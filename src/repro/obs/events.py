"""Bounded ring-buffer structured event log with optional JSONL sink.

Operationally significant moments — a partition quarantined, a query
served degraded, a shard dropped from a scatter, a quantizer retrain,
a crash-recovery sweep, a query over the ``slow_query_ms`` threshold —
are rare and individually meaningful, the opposite shape from metrics.
They land in a fixed-capacity in-memory ring (oldest evicted first)
inspectable via :meth:`EventLog.tail`, and, when the config names a
``event_log_path``, are appended as one JSON object per line so an
external collector can follow the file.

Like the metrics registry, a disabled log's :meth:`EventLog.emit` is a
single attribute check. Lifetime per-kind counts survive ring
eviction, so ``count("slow_query")`` is exact even after overflow.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass

__all__ = ["Event", "EventLog", "EVENT_KINDS"]

#: The event kinds the engine and shard layers emit today. ``emit``
#: accepts any kind string; this tuple documents the built-in ones.
EVENT_KINDS = (
    "quarantine",
    "degraded_query",
    "degraded_shard",
    "retrain",
    "crash_recovery_sweep",
    "slow_query",
    "scrub",
    "repair",
    "compact",
    "audit",
    "recall_dip",
)


@dataclass(frozen=True, slots=True)
class Event:
    """One structured event: a kind, a wall-clock stamp, and fields."""

    kind: str
    timestamp: float
    fields: tuple[tuple[str, object], ...] = ()

    def get(self, name: str, default: object = None) -> object:
        for key, value in self.fields:
            if key == name:
                return value
        return default

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "timestamp": self.timestamp,
            **dict(self.fields),
        }


class EventLog:
    """Thread-safe bounded event ring with an optional JSONL sink."""

    def __init__(
        self,
        capacity: int = 512,
        jsonl_path: str | None = None,
        enabled: bool = True,
    ) -> None:
        if capacity < 1:
            raise ValueError("event log capacity must be >= 1")
        self._enabled = bool(enabled)
        self._lock = threading.Lock()
        self._ring: deque[Event] = deque(maxlen=capacity)
        self._counts: dict[str, int] = {}
        self._total = 0
        self._jsonl_path = jsonl_path
        self._sink = None

    @property
    def enabled(self) -> bool:
        return self._enabled

    @property
    def capacity(self) -> int:
        return self._ring.maxlen or 0

    @property
    def total_emitted(self) -> int:
        """Lifetime emit count, unaffected by ring eviction."""
        with self._lock:
            return self._total

    def emit(self, kind: str, **fields: object) -> None:
        """Record one event (no-op when telemetry is disabled)."""
        if not self._enabled:
            return
        event = Event(
            kind=kind,
            timestamp=time.time(),
            fields=tuple(sorted(fields.items())),
        )
        with self._lock:
            self._ring.append(event)
            self._counts[kind] = self._counts.get(kind, 0) + 1
            self._total += 1
            if self._jsonl_path is not None:
                if self._sink is None:
                    self._sink = open(
                        self._jsonl_path, "a", encoding="utf-8"
                    )
                self._sink.write(
                    json.dumps(event.to_dict(), default=str) + "\n"
                )
                self._sink.flush()

    def tail(
        self, limit: int | None = None, kind: str | None = None
    ) -> tuple[Event, ...]:
        """Newest-last view of the ring, optionally filtered by kind."""
        with self._lock:
            events = list(self._ring)
        if kind is not None:
            events = [event for event in events if event.kind == kind]
        if limit is not None:
            events = events[-limit:]
        return tuple(events)

    def count(self, kind: str | None = None) -> int:
        """Lifetime count of one kind (or of everything)."""
        with self._lock:
            if kind is None:
                return self._total
            return self._counts.get(kind, 0)

    def counts_by_kind(self) -> dict[str, int]:
        with self._lock:
            return dict(self._counts)

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def close(self) -> None:
        """Close the JSONL sink (idempotent); the ring stays readable."""
        with self._lock:
            sink, self._sink = self._sink, None
        if sink is not None:
            sink.close()
