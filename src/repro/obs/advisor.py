"""Evidence-backed tuning recommendations over the observed workload.

``MicroNN.advise()`` / ``ShardedMicroNN.advise()`` (and the CLI's
``repro advise``) funnel here: a pure rule engine over the telemetry
the database already collected — the shadow-audit summary
(:mod:`repro.obs.audit`), the workload sketch and partition heatmap
(:mod:`repro.obs.workload`), the metrics snapshot, and ``IndexStats``.
Every recommendation carries the observed numbers that justify it;
a rule with no evidence stays silent rather than guessing.

The catalog (see README "Quality auditing & advisor"):

- ``default_nprobe`` — raise when audited recall runs below target
  (the paper's latency/recall knob, Fig. 6), lower when recall is
  saturated and probe sets are large;
- ``rerank_factor`` — raise when a quantized scan mode shows the
  recall loss;
- ``adaptive_nprobe_margin`` — tighten when early termination is
  skipping probe-set partitions while recall is low;
- ``device.partition_cache_bytes`` — grow when the hot set misses the
  cache on most loads;
- ``quantization`` — sq8↔pq switch suggestions from code size vs
  observed recall headroom.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.audit import AuditSummary
from repro.obs.workload import WorkloadSnapshot

__all__ = [
    "Recommendation",
    "build_recommendations",
    "format_recommendations",
    "combine_audit_summaries",
]

#: Audited queries a recall-based rule needs before it may speak.
_MIN_AUDITS = 8
#: Recall target the rules tune toward (never below the configured
#: dip floor, never demanding the impossible 1.0).
_RECALL_TARGET = 0.95


@dataclass(frozen=True, slots=True)
class Recommendation:
    """One structured tuning recommendation with its evidence."""

    #: Config knob the recommendation targets (dotted path).
    knob: str
    #: "raise" | "lower" | "switch" | "keep" | "enable".
    action: str
    #: Current value, rendered.
    current: str
    #: Suggested value, rendered.
    suggested: str
    #: "warn" (quality/cost problem observed) or "info".
    severity: str
    #: Observed numbers justifying the recommendation.
    evidence: str
    #: One-sentence why.
    rationale: str


def combine_audit_summaries(
    summaries: list[AuditSummary],
) -> AuditSummary:
    """Fold per-shard audit summaries into one fleet summary.

    Counts sum; means weight by audited-query counts; the sliding
    windows concatenate by weight (the fleet "window" is the union of
    the shards' windows).
    """
    audited = sum(s.audited_queries for s in summaries)
    window_size = sum(s.window_size for s in summaries)
    by_label: dict[tuple[str, str, int], list] = {}
    for summary in summaries:
        for key, count, mean in summary.by_label:
            row = by_label.setdefault(key, [0, 0.0])
            row[0] += count
            row[1] += mean * count
    return AuditSummary(
        audited_queries=audited,
        mean_recall=(
            sum(s.mean_recall * s.audited_queries for s in summaries)
            / audited
            if audited
            else 0.0
        ),
        window_mean=(
            sum(s.window_mean * s.window_size for s in summaries)
            / window_size
            if window_size
            else 0.0
        ),
        window_size=window_size,
        recall_dips=sum(s.recall_dips for s in summaries),
        dropped=sum(s.dropped for s in summaries),
        by_label=tuple(
            (key, row[0], row[1] / row[0])
            for key, row in sorted(by_label.items())
        ),
    )


def _audit_evidence(
    audit: AuditSummary,
    floor: float,
    per_shard: tuple[tuple[str, AuditSummary], ...],
) -> str:
    parts = [
        f"audited recall@k mean {audit.mean_recall:.3f} over "
        f"{audit.audited_queries} shadow-audited queries "
        f"(floor {floor:g}, dips {audit.recall_dips})"
    ]
    ladder = audit.recall_at_nprobe()
    if len(ladder) > 1:
        parts.append(
            "recall by nprobe: "
            + ", ".join(
                f"nprobe={n}: {mean:.3f} (n={count})"
                for n, count, mean in ladder
            )
        )
    shard_rows = [
        f"{label}={s.mean_recall:.3f} (n={s.audited_queries})"
        for label, s in per_shard
        if s.audited_queries
    ]
    if shard_rows:
        parts.append("per-shard recall: " + ", ".join(shard_rows))
    return "; ".join(parts)


def build_recommendations(
    config,
    index_stats,
    snapshot,
    audit: AuditSummary | None,
    workload: WorkloadSnapshot | None,
    per_shard_audit: tuple[tuple[str, AuditSummary], ...] = (),
) -> tuple[Recommendation, ...]:
    """The rule engine. Pure: inputs in, recommendations out."""
    recs: list[Recommendation] = []
    floor = config.audit_recall_floor
    sketch = workload.sketch if workload is not None else None
    audited = audit.audited_queries if audit is not None else 0
    recall_known = audited >= _MIN_AUDITS
    mean_recall = audit.mean_recall if audit is not None else 0.0
    low_recall = recall_known and mean_recall < max(floor, _RECALL_TARGET)

    observed_nprobe = config.default_nprobe
    if sketch is not None and sketch.nprobe_counts:
        observed_nprobe = sketch.median_nprobe
    partitions = max(index_stats.num_partitions, 1)

    if low_recall:
        evidence = _audit_evidence(audit, floor, per_shard_audit)
        suggested = min(max(observed_nprobe * 2, observed_nprobe + 1),
                        partitions)
        if suggested > observed_nprobe:
            recs.append(
                Recommendation(
                    knob="default_nprobe",
                    action="raise",
                    current=str(observed_nprobe),
                    suggested=str(suggested),
                    severity="warn",
                    evidence=evidence,
                    rationale=(
                        "observed recall runs below target; probing "
                        "more of the "
                        f"{index_stats.num_partitions} partitions is "
                        "the primary recall knob"
                    ),
                )
            )
        if config.uses_quantization:
            recs.append(
                Recommendation(
                    knob="rerank_factor",
                    action="raise",
                    current=str(config.rerank_factor),
                    suggested=str(config.rerank_factor * 2),
                    severity="warn",
                    evidence=(
                        f"scan mode {config.quantization} at "
                        f"{index_stats.code_bytes_per_vector:.0f} code "
                        f"bytes/vector; {evidence}"
                    ),
                    rationale=(
                        "a deeper exact-rerank pool recovers recall "
                        "lost to quantized scanning without touching "
                        "the probe set"
                    ),
                )
            )
        if (
            config.adaptive_nprobe_margin is not None
            and sketch is not None
            and sketch.skip_fraction > 0.05
        ):
            recs.append(
                Recommendation(
                    knob="adaptive_nprobe_margin",
                    action="lower",
                    current=f"{config.adaptive_nprobe_margin:g}",
                    suggested=f"{config.adaptive_nprobe_margin / 2:g}",
                    severity="warn",
                    evidence=(
                        "adaptive early termination skipped "
                        f"{sketch.partitions_skipped} of "
                        f"{sketch.partitions_skipped + sketch.partitions_scanned} "
                        f"probe-set partitions "
                        f"({sketch.skip_fraction:.0%}) while "
                        f"{evidence}"
                    ),
                    rationale=(
                        "the margin is pruning partitions the query "
                        "needed; tighten it (or unset it) until "
                        "recall recovers"
                    ),
                )
            )

    # Cache sizing: most loads missing the cache while one hot set is
    # scanned repeatedly means the budget is below the working set.
    hot = snapshot.value(
        "micronn_partition_loads_total", {"temperature": "hot"}
    )
    cold = snapshot.value(
        "micronn_partition_loads_total", {"temperature": "cold"}
    )
    loads = hot + cold
    if loads >= 64 and cold / loads > 0.5:
        heat = workload.heatmap if workload is not None else ()
        working_set = sum(
            h.bytes_read // max(h.cold_misses, 1) for h in heat
        )
        budget = config.device.partition_cache_bytes
        evidence = (
            f"partition cache hit ratio {hot / loads:.0%} over "
            f"{loads:.0f} loads; "
            f"{snapshot.value('micronn_partition_bytes_read_total'):.0f} "
            f"bytes re-read from storage"
        )
        if working_set:
            evidence += (
                f"; hottest {len(heat)} partitions span "
                f"~{working_set} bytes vs a {budget} byte budget"
            )
        recs.append(
            Recommendation(
                knob="device.partition_cache_bytes",
                action="raise",
                current=str(budget),
                suggested=str(
                    max(budget * 2, int(working_set * 1.25) or 0)
                ),
                severity="info",
                evidence=evidence,
                rationale=(
                    "the scanned working set does not fit the "
                    "partition cache, so warm traffic pays cold I/O"
                ),
            )
        )

    # sq8 <-> pq: only with recall headroom (or deficit) actually
    # observed — code size alone never justifies a switch.
    if recall_known:
        if (
            config.quantization == "sq8"
            and mean_recall >= 0.98
            and config.dim >= 64
        ):
            recs.append(
                Recommendation(
                    knob="quantization",
                    action="switch",
                    current="sq8",
                    suggested="pq",
                    severity="info",
                    evidence=(
                        f"audited recall {mean_recall:.3f} over "
                        f"{audited} queries at "
                        f"{index_stats.code_bytes_per_vector:.0f} code "
                        f"bytes/vector (sq8 = 1 byte/dim)"
                    ),
                    rationale=(
                        "recall headroom suggests PQ's smaller codes "
                        "(1 byte/sub-vector) would cut scan bytes "
                        "further at acceptable recall; re-audit after "
                        "switching"
                    ),
                )
            )
        elif config.quantization == "pq" and mean_recall < 0.9:
            recs.append(
                Recommendation(
                    knob="quantization",
                    action="switch",
                    current="pq",
                    suggested="sq8",
                    severity="warn",
                    evidence=(
                        f"audited recall {mean_recall:.3f} over "
                        f"{audited} queries at "
                        f"{index_stats.code_bytes_per_vector:.0f} code "
                        f"bytes/vector"
                    ),
                    rationale=(
                        "PQ's coarser codes are costing recall this "
                        "workload cannot absorb; sq8 trades bytes "
                        "back for accuracy"
                    ),
                )
            )

    if not recs:
        if audited:
            recs.append(
                Recommendation(
                    knob="default_nprobe",
                    action="keep",
                    current=str(observed_nprobe),
                    suggested=str(observed_nprobe),
                    severity="info",
                    evidence=_audit_evidence(
                        audit, floor, per_shard_audit
                    ),
                    rationale=(
                        "audited recall meets the target; no tuning "
                        "change is indicated by the observed workload"
                    ),
                )
            )
        else:
            recs.append(
                Recommendation(
                    knob="audit_sample_rate",
                    action="enable",
                    current=f"{config.audit_sample_rate:g}",
                    suggested="0.05",
                    severity="info",
                    evidence=(
                        "0 shadow-audited queries recorded; recall-"
                        "based rules have no evidence to run on"
                    ),
                    rationale=(
                        "enable sampled shadow auditing so advise() "
                        "can observe live recall"
                    ),
                )
            )
    return tuple(recs)


def format_recommendations(recs: tuple[Recommendation, ...]) -> str:
    """Render recommendations as the CLI's human-readable report."""
    if not recs:
        return "no recommendations"
    lines = [f"tuning recommendations ({len(recs)}):"]
    for i, rec in enumerate(recs, 1):
        head = f"{i}. [{rec.severity}] {rec.action} {rec.knob}"
        if rec.action in ("raise", "lower", "switch"):
            head += f": {rec.current} -> {rec.suggested}"
        elif rec.action == "enable":
            head += f": {rec.current} -> {rec.suggested}"
        else:
            head += f" at {rec.current}"
        lines.append(head)
        lines.append(f"   why: {rec.rationale}")
        lines.append(f"   evidence: {rec.evidence}")
    return "\n".join(lines)
