"""Concurrent query scheduler: shared I/O, admission control, futures.

This is the serving engine behind ``MicroNN.search_async`` and
:class:`repro.serve.Session`. The single-query pipeline
(:mod:`repro.query.pipeline`) overlaps one query's reads with its own
kernels; the scheduler generalizes that producer/consumer into a
**shared I/O stage** multiplexed across every in-flight query:

- **Admission control** — at most ``max_inflight_queries`` queries run
  at once; further submissions queue FIFO (their wait is surfaced as
  ``QueryStats.queue_wait_ms``). Admission additionally defers while
  the scratch-buffer pool's pinned bytes exceed its budget, so a burst
  of cold queries cannot commit unbounded decode memory — unless
  nothing is in flight at all, in which case one query is always
  admitted (liveness).
- **Cross-query I/O coalescing** — each admitted query registers
  interest in its probe set; a partition wanted by several queries is
  read and decoded **once** and scored for every interested query (the
  multi-query optimization of §3.4, applied to the cache-cold case).
  Loads are prioritized by centroid distance across *all* queries, so
  the most promising partitions of every query are scored first.
- **Fair attribution** — a shared load's bytes and I/O time are split
  across its consumers; ``io_shared_hits`` counts how many of a
  query's partitions were served by a shared read.

Results are **bit-identical** to serial ``search()``: the scheduler
reuses the executor's selection, per-partition kernels
(``distances_to_one`` per query — never a cross-query GEMM, whose
accumulation order could differ), rerank and merge machinery. Only the
I/O schedule changes. One carve-out: with ``adaptive_nprobe_margin``
set, pruning decisions depend on the order partitions happen to be
scored in — true of every concurrent path, the single-query pipeline
included — so adaptive runs are recall-equivalent within the margin
rather than bit-identical; the contract holds exactly when the margin
is unset (the default).

Error isolation: a failed load fails exactly the queries waiting on
it; a failed scoring or finalize step fails exactly that query. The
shared stage itself keeps running either way.
"""

from __future__ import annotations

import dataclasses
import heapq
import threading
import time
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable

import numpy as np

from repro.core.config import DELTA_PARTITION_ID, MicroNNConfig
from repro.core.errors import DatabaseClosedError
from repro.core.types import PlanKind, QueryStats, SearchResult
from repro.obs.metrics import WAIT_MS_BUCKETS
from repro.query.distance import distances_to_one, make_code_scorer
from repro.query.executor import QueryExecutor, _masked, adaptive_skip
from repro.query.heap import TopKHeap, merge_topk, topk_from_distances
from repro.query.pipeline import is_partition_cold
from repro.storage.engine import _ROW_OVERHEAD_BYTES, StorageEngine

#: Load-job lifecycle: queued (joinable), loading (joinable), done
#: (no longer in the registry — later interest starts a fresh job).
_PENDING, _RUNNING, _DONE = 0, 1, 2


class _LoadJob:
    """One shared partition read plus the queries waiting on it."""

    __slots__ = ("pid", "use_codes", "state", "waiters", "priority")

    def __init__(self, pid: int, use_codes: bool, priority: float) -> None:
        self.pid = pid
        self.use_codes = use_codes
        self.state = _PENDING
        #: ``(task, centroid_distance)`` per interested query.
        self.waiters: list[tuple["_ScanTask", float]] = []
        self.priority = priority

    @property
    def key(self) -> tuple[int, bool]:
        return (self.pid, self.use_codes)


class _ScanTask:
    """Per-query state of one scheduled ANN / post-filter search."""

    __slots__ = (
        "query", "k", "nprobe", "qualifying_ids", "plan", "stats_extra",
        "setup_fn", "future", "quantizer", "scorer", "rerank_pool",
        "heap", "approx", "exact", "pending", "num_selected", "lock",
        "failed", "finished", "scanned", "computed", "filtered",
        "skipped", "shared_hits", "cache_hits", "cache_misses",
        "bytes_read", "io_s", "compute_s", "submit_t", "admit_t",
        "quarantined",
    )

    def __init__(
        self,
        query: np.ndarray,
        k: int,
        nprobe: int,
        qualifying_ids: frozenset[str] | None,
        plan: PlanKind,
        stats_extra: dict | None,
        setup_fn: Callable | None = None,
    ) -> None:
        self.query = query
        self.k = k
        self.nprobe = nprobe
        self.qualifying_ids = qualifying_ids
        self.plan = plan
        self.stats_extra = stats_extra
        self.setup_fn = setup_fn
        self.future: Future = Future()
        self.quantizer = None
        self.scorer = None
        self.rerank_pool = k
        self.heap: TopKHeap | None = None
        self.approx: TopKHeap | None = None
        self.exact: TopKHeap | None = None
        self.pending: set[int] = set()
        self.num_selected = 0
        self.lock = threading.Lock()
        self.failed = False
        self.finished = False
        self.scanned = 0
        self.computed = 0
        self.filtered = 0
        self.skipped = 0
        self.shared_hits = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.quarantined = 0
        self.bytes_read = 0
        self.io_s = 0.0
        self.compute_s = 0.0
        self.submit_t = time.perf_counter()
        self.admit_t = self.submit_t

    def prepare(
        self,
        partitions: list[tuple[int, float]],
        quantizer,
        rerank_factor: int,
        metric: str,
    ) -> None:
        """Set up heaps + pending set once the probe set is known.

        The code scorer is per-query state by construction: under PQ
        it closes over THIS query's ADC lookup table, so a partition
        read coalesced across N queries is decoded once and scored N
        times, each consumer against its own table.
        """
        self.quantizer = quantizer
        self.num_selected = len(partitions)
        self.pending = {pid for pid, _ in partitions}
        if quantizer is not None:
            self.scorer = make_code_scorer(self.query, quantizer, metric)
            self.rerank_pool = max(self.k, rerank_factor * self.k)
            self.approx = TopKHeap(self.rerank_pool)
            self.exact = TopKHeap(self.k)
        else:
            self.heap = TopKHeap(self.k)

    def current_kth(self) -> float:
        """Current k-th candidate bound driving adaptive admission.

        Exact (a true upper bound) for float32 scans; for SQ8 the
        approximate heap's bound is in quantized space, so — as on the
        serial adaptive path — the margin must absorb quantization
        error and pruning is heuristic, not strict.
        """
        if self.heap is not None:
            return self.heap.worst_distance()
        return min(
            self.approx.worst_distance(), self.exact.worst_distance()
        )

    def score_entry(
        self,
        entry,
        is_codes: bool,
        centroid_dist: float,
        metric: str,
        margin: float | None,
    ) -> None:
        """Fold one loaded partition into this query's heaps.

        Exactly the serial scan's per-partition numerics: one
        ``distances_to_one`` (or fused int8) call for this query alone,
        then the deterministic ``topk_from_distances`` push.
        """
        with self.lock:
            if self.finished or self.failed:
                return
            if margin is not None and adaptive_skip(
                centroid_dist, self.current_kth(), margin
            ):
                self.skipped += 1
                return
        if not len(entry):
            return
        ids, matrix, dropped = _masked(entry, self.qualifying_ids)
        candidates = None
        keep = self.k
        if len(ids):
            if is_codes:
                keep = self.rerank_pool
                dist = self.scorer(matrix)
            else:
                dist = distances_to_one(self.query, matrix, metric)
            candidates = topk_from_distances(ids, dist, keep)
        with self.lock:
            if self.finished or self.failed:
                return
            self.scanned += len(entry)
            self.filtered += dropped
            if candidates is not None:
                self.computed += len(ids)
                if is_codes:
                    self.approx.push_candidates(candidates)
                elif self.exact is not None:
                    self.exact.push_candidates(candidates)
                else:
                    self.heap.push_candidates(candidates)

    def partition_done(self, pid: int) -> bool:
        """Mark one probe-set partition resolved; True when last."""
        with self.lock:
            if self.finished:
                return False
            self.pending.discard(pid)
            if self.pending:
                return False
            self.finished = True
            return True

class QueryScheduler:
    """The concurrent serving engine over one storage engine."""

    def __init__(
        self,
        engine: StorageEngine,
        executor: QueryExecutor,
        config: MicroNNConfig,
    ) -> None:
        self._engine = engine
        self._executor = executor
        self._config = config
        self._cv = threading.Condition()
        self._closed = False
        self._stop = False
        self._seq = 0
        self._waiting: deque = deque()
        self._active: set = set()
        self._jobs: dict[tuple[int, bool], _LoadJob] = {}
        self._io_heap: list[tuple[float, int, _LoadJob]] = []
        #: Lifetime counters (Session.stats / benches read these).
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        metrics = engine.metrics
        self._m_submitted = metrics.counter(
            "micronn_serve_submitted_total",
            "Queries submitted to the serving scheduler.",
        )
        self._m_resolved = metrics.counter(
            "micronn_serve_resolved_total",
            "Scheduled queries resolved, by outcome.",
            labels=("outcome",),
        )
        self._m_queue_wait = metrics.histogram(
            "micronn_serve_queue_wait_ms",
            "Milliseconds queries waited for admission.",
            buckets=WAIT_MS_BUCKETS,
        )
        self._m_coalesced = metrics.counter(
            "micronn_serve_coalesced_loads_total",
            "Physical partition loads shared by 2+ concurrent queries.",
        )
        io_threads = config.resolved_serve_io_threads
        # Load-ahead bound: the scheduler's generalization of the
        # single-query pipeline's `depth`. At most this many decoded
        # payloads may sit loaded-but-unscored at once; io threads
        # stall past it, so a slow compute stage back-pressures reads
        # instead of letting scratch leases pile up unboundedly.
        self._load_ahead_cap = (
            max(1, config.pipeline_depth)
            + config.device.worker_threads
            + io_threads
        )
        self._outstanding = 0
        self._compute_pool = ThreadPoolExecutor(
            max_workers=config.device.worker_threads,
            thread_name_prefix="micronn-serve",
        )
        self._io_threads = [
            threading.Thread(
                target=self._io_loop,
                name=f"micronn-serve-io-{i}",
                daemon=True,
            )
            for i in range(io_threads)
        ]
        for thread in self._io_threads:
            thread.start()

    # ------------------------------------------------------------------
    # Submission + admission
    # ------------------------------------------------------------------

    def submit(
        self,
        query: np.ndarray,
        k: int,
        nprobe: int,
        qualifying_ids: frozenset[str] | None = None,
        plan: PlanKind = PlanKind.ANN,
        stats_extra: dict | None = None,
        setup: Callable | None = None,
    ) -> Future:
        """Schedule one ANN / post-filter query; returns its future.

        Validation happens synchronously (bad vectors raise here, like
        the serial path); everything else — plan setup, selection,
        loads, kernels, rerank — runs on the serving stages' threads,
        never the submitter's (an asyncio loop can submit without
        stalling).

        ``setup``, when given, runs on the compute pool at admission
        and returns either ``("call", fn, extra)`` — the query resolves
        to one serial call (e.g. the optimizer picked pre-filtering) —
        or ``("scan", qualifying_ids, extra)`` to proceed through the
        shared scan stage. This keeps plan resolution and predicate
        evaluation (a full attribute-table scan for broad filters) off
        the caller's thread and inside admission control.

        Caller contract (``MicroNN.search_async`` is the sole caller):
        ``query`` is already canonicalized via ``executor.as_query``
        and ``k`` validated — one owner for the input rules, no
        re-validation here.
        """
        if nprobe < 1:
            raise ValueError("nprobe must be >= 1")
        task = _ScanTask(
            query, k, nprobe, qualifying_ids, plan, stats_extra,
            setup_fn=setup,
        )
        self._enqueue(task)
        return task.future

    def submit_call(
        self,
        fn: Callable[[], SearchResult],
        stats_extra: dict | None = None,
    ) -> Future:
        """Schedule a query that runs as one serial call (exact KNN,
        pre-filter plans — no partition scan to share), still under the
        same admission control as scanned queries."""
        task = _CallTask(fn)
        task.stats_extra = stats_extra
        self._enqueue(task)
        return task.future

    def _enqueue(self, task) -> None:
        with self._cv:
            if self._closed:
                raise DatabaseClosedError("scheduler is closed")
            self._submitted += 1
            self._waiting.append(task)
        self._m_submitted.inc()
        self._pump()

    def _pump(self) -> None:
        """Admit queued queries while slots + memory headroom allow."""
        while True:
            with self._cv:
                if not self._waiting:
                    return
                if len(self._active) >= self._config.max_inflight_queries:
                    return
                # Memory-aware back-pressure: while in-flight scans
                # keep the scratch pool pinned past its budget, hold
                # new admissions — but never starve an idle scheduler.
                if self._active and not self._engine.scratch.has_headroom():
                    return
                task = self._waiting.popleft()
                self._active.add(task)
            if not task.future.set_running_or_notify_cancel():
                # Cancelled while queued: this is an _active shrink
                # like any other, so drain()/close() waiters must be
                # woken or they sleep forever on an empty scheduler.
                with self._cv:
                    self._active.discard(task)
                    self._cv.notify_all()
                continue
            task.admit_t = time.perf_counter()
            self._m_queue_wait.observe(
                (task.admit_t - task.submit_t) * 1e3
            )
            # Launch on the compute pool: plan setup, predicate
            # evaluation and centroid selection are real storage work
            # that must not run on the submitting thread (which may be
            # an asyncio event loop).
            self._compute_pool.submit(self._launch_guarded, task)

    def _launch_guarded(self, task) -> None:
        try:
            self._launch(task)
        except BaseException as exc:
            self._fail_task(task, exc)

    def _launch(self, task) -> None:
        if isinstance(task, _CallTask):
            self._execute_call(task, task.fn, task.stats_extra)
            return
        if task.setup_fn is not None:
            kind, payload, extra = task.setup_fn()
            if kind == "call":
                self._execute_call(task, payload, extra)
                return
            task.qualifying_ids = payload
            if extra:
                task.stats_extra = extra
        # Selection reads the centroid table; register with the purge
        # guard like every other storage-touching serving step. (The
        # setup() call above is deliberately outside: a pre-filter
        # plan's fn takes its own scan_session, and the guard is not
        # reentrant.)
        with self._engine.scan_session():
            partitions = self._executor.select_partitions(
                task.query, task.nprobe
            )
        quantizer = self._executor.scan_quantizer()
        task.prepare(
            partitions,
            quantizer,
            self._config.rerank_factor,
            self._config.metric,
        )
        use_codes = quantizer is not None
        with self._cv:
            for pid, cdist in partitions:
                key = (pid, use_codes)
                job = self._jobs.get(key)
                if job is not None:
                    job.waiters.append((task, cdist))
                    if cdist < job.priority and job.state == _PENDING:
                        # Lazy decrease-key: push a duplicate entry;
                        # stale pops are skipped by the state check.
                        job.priority = cdist
                        self._seq += 1
                        heapq.heappush(
                            self._io_heap, (cdist, self._seq, job)
                        )
                else:
                    job = _LoadJob(pid, use_codes, cdist)
                    job.waiters.append((task, cdist))
                    self._jobs[key] = job
                    self._seq += 1
                    heapq.heappush(
                        self._io_heap, (cdist, self._seq, job)
                    )
            self._cv.notify_all()

    # ------------------------------------------------------------------
    # Shared I/O stage
    # ------------------------------------------------------------------

    def _io_loop(self) -> None:
        while True:
            with self._cv:
                while not self._stop and (
                    not self._io_heap
                    or self._outstanding >= self._load_ahead_cap
                ):
                    self._cv.wait()
                if self._stop and not self._io_heap:
                    return
                if self._outstanding >= self._load_ahead_cap:
                    continue
                _, _, job = heapq.heappop(self._io_heap)
                if job.state != _PENDING:
                    continue
                job.state = _RUNNING
            self._run_load(job)

    def _release_load_slot(self) -> None:
        with self._cv:
            self._outstanding -= 1
            self._cv.notify_all()

    def _run_load(self, job: _LoadJob) -> None:
        if self._retire_job_without_load(job):
            return
        engine = self._engine
        was_cold = is_partition_cold(
            engine.cache,
            engine.codes_cache,
            job.pid,
            job.use_codes,
            DELTA_PARTITION_ID,
            delta_codes=engine.delta_codes,
        )
        # The load-ahead slot is held from here until the payload has
        # been scored (or the load failed).
        with self._cv:
            self._outstanding += 1
        start = time.perf_counter()
        try:
            with engine.scan_session():
                entry, is_codes = engine.load_scan_entry(
                    job.pid, quantized=job.use_codes, use_scratch=True
                )
        except BaseException as exc:
            self._release_load_slot()
            waiters = self._complete_job(job)
            for task, _ in waiters:
                self._fail_task(task, exc)
            return
        load_s = time.perf_counter() - start
        waiters = self._complete_job(job)
        self._compute_pool.submit(
            self._score_job, job, entry, is_codes, waiters, was_cold,
            load_s,
        )

    def _retire_job_without_load(self, job: _LoadJob) -> bool:
        """Skip the read when no live waiter still needs it.

        Two reasons a popped job may be dead I/O: every waiter already
        finished (e.g. the sole interested query failed on an earlier
        partition), or — with ``adaptive_nprobe_margin`` set, mirroring
        the pipeline's producer-side ``admit`` check — every live
        waiter's current k-th candidate already beats the partition's
        centroid distance by the margin. Decided under the registry
        lock so a new waiter cannot join between the verdict and the
        job's retirement; if any waiter still needs the partition, it
        is loaded for everyone and the per-waiter check at scoring time
        settles the rest.
        """
        margin = self._config.adaptive_nprobe_margin
        with self._cv:
            for task, cdist in job.waiters:
                # Snapshot under the task lock: a compute thread
                # mid-heap-push can leave a transiently-too-small root
                # that an unlocked worst_distance() read would mistake
                # for the k-th bound.
                with task.lock:
                    if task.finished:
                        continue
                    kth = task.current_kth()
                if margin is None or not adaptive_skip(
                    cdist, kth, margin
                ):
                    return False
            job.state = _DONE
            self._jobs.pop(job.key, None)
            waiters = list(job.waiters)
        self._engine.workload.record_skip(job.pid)
        for task, _ in waiters:
            with task.lock:
                if not task.finished:
                    task.skipped += 1
            if task.partition_done(job.pid):
                # Finalize (SQ8 rerank I/O + merges) belongs on the
                # compute pool — this path runs on a shared io thread,
                # which must get back to other queries' loads.
                self._compute_pool.submit(self._finalize_task, task)
        return True

    def _complete_job(self, job: _LoadJob) -> list[tuple]:
        """DONE transition: freeze the waiter list, leave the registry.

        Interest arriving after this point starts a fresh job — the
        payload may be a scratch lease that is released as soon as the
        frozen waiters have been scored, so it must never gain new
        consumers.
        """
        with self._cv:
            job.state = _DONE
            self._jobs.pop(job.key, None)
            return list(job.waiters)

    # ------------------------------------------------------------------
    # Compute stage
    # ------------------------------------------------------------------

    def _score_job(
        self, job, entry, is_codes, waiters, was_cold, load_s
    ) -> None:
        """One decode, N scoring consumers (then finalize finished
        queries). Runs on the compute pool."""
        metric = self._config.metric
        margin = self._config.adaptive_nprobe_margin
        # Attribute the physical read among waiters alive at snapshot
        # time — a query that failed earlier must not swallow a byte
        # share. Attribution within the snapshot is then
        # unconditional: a task that fails *after* the snapshot still
        # absorbs its share (its stats are never surfaced, and
        # re-splitting would drop the leader's remainder and cache
        # miss on the floor), so summed shares always equal the
        # physical read. A warm load (LRU hit) records NO bytes —
        # exactly as the engine's accountant treats cache hits, so
        # serving and serial stats stay comparable.
        live = []
        for task, cdist in waiters:
            with task.lock:
                if not task.finished:
                    live.append((task, cdist))
        sharers = max(len(live), 1)
        if sharers > 1:
            self._m_coalesced.inc()
        # A quarantined partition loads as empty: every waiter's query
        # degraded (it consulted a partition that could not be served).
        quarantined = (
            len(entry) == 0
            and job.pid != DELTA_PARTITION_ID
            and self._engine.is_quarantined(job.pid)
        )
        if was_cold:
            # The backend reports the layout's true stored size (the
            # packed layout has no per-row overhead); fall back to the
            # row-layout estimate for entries built without one (the
            # in-memory delta codes).
            if entry.stored_bytes is not None:
                total_bytes = int(entry.stored_bytes)
            else:
                total_bytes = (
                    int(entry.nbytes) + _ROW_OVERHEAD_BYTES * len(entry)
                )
        else:
            total_bytes = 0
        share = total_bytes // sharers
        try:
            with self._engine.scan_session():
                for i, (task, cdist) in enumerate(live):
                    with task.lock:
                        task.io_s += load_s / sharers
                        if quarantined:
                            task.quarantined += 1
                        if sharers > 1:
                            task.shared_hits += 1
                        # The leader's read was the physical one; it
                        # alone carries the hit/miss so per-query
                        # misses sum to the engine's physical misses.
                        if i == 0:
                            task.bytes_read += (
                                total_bytes - share * (sharers - 1)
                            )
                            if was_cold:
                                task.cache_misses += 1
                            else:
                                task.cache_hits += 1
                        else:
                            task.bytes_read += share
                        if task.finished:
                            continue
                    start = time.perf_counter()
                    try:
                        task.score_entry(
                            entry, is_codes, cdist, metric, margin
                        )
                    except BaseException as exc:
                        self._fail_task(task, exc)
                        continue
                    with task.lock:
                        task.compute_s += time.perf_counter() - start
        finally:
            if entry.lease is not None:
                entry.lease.release()
                # Returning a lease may restore scratch headroom;
                # re-pump so a memory-deferred query is admitted now,
                # not when some whole query eventually retires.
                self._pump()
            self._release_load_slot()
        for task, _ in waiters:
            if task.partition_done(job.pid):
                self._finalize_task(task)

    def _finalize_task(self, task: _ScanTask) -> None:
        try:
            result = self._build_result(task)
        except BaseException as exc:
            self._resolve(task, exc=exc)
            return
        self._resolve(task, result=result)

    def _build_result(self, task: _ScanTask) -> SearchResult:
        executor = self._executor
        reranked = 0
        if task.quantizer is not None:
            with self._engine.scan_session():
                rerank_heap, reranked = executor.rerank_candidates(
                    merge_topk([task.approx], task.rerank_pool),
                    task.query,
                    task.k,
                )
            heaps = [rerank_heap, task.exact]
            # The rerank point-fetch is this query's alone; charge it
            # with the same formula the engine's accountant uses.
            task.bytes_read += reranked * (
                4 * self._config.dim + _ROW_OVERHEAD_BYTES
            )
        else:
            heaps = [task.heap]
        neighbors = executor.finalize_heaps(heaps, task.k)
        now = time.perf_counter()
        stats = QueryStats(
            plan=task.plan,
            nprobe=task.nprobe,
            partitions_scanned=task.num_selected - task.skipped,
            vectors_scanned=task.scanned,
            distance_computations=task.computed + reranked,
            rows_filtered=task.filtered,
            cache_hits=task.cache_hits,
            cache_misses=task.cache_misses,
            bytes_read=task.bytes_read,
            latency_s=now - task.submit_t,
            scan_mode=(
                task.quantizer.kind
                if task.quantizer is not None
                else "float32"
            ),
            candidates_reranked=reranked,
            io_time_ms=task.io_s * 1e3,
            compute_time_ms=task.compute_s * 1e3,
            partitions_skipped=task.skipped,
            io_shared_hits=task.shared_hits,
            queue_wait_ms=(task.admit_t - task.submit_t) * 1e3,
            partitions_quarantined=task.quarantined,
            degraded=task.quarantined > 0,
        )
        if task.stats_extra:
            stats = dataclasses.replace(stats, **task.stats_extra)
        # The scheduler's scan path bypasses the executor's entry
        # points, so it funnels through the same per-query recording —
        # serial and served queries land in one metric family, and the
        # quality funnel (workload sketch + shadow recall audit) sees
        # scheduled queries exactly like serial ones.
        executor.record_query_stats(stats)
        executor.observe_completed_query(
            task.query, task.k, stats, neighbors
        )
        return SearchResult(neighbors=neighbors, stats=stats)

    def _execute_call(self, task, fn, extra: dict | None) -> None:
        """Run a call-plan query inline (already on the compute pool).

        ``latency_s`` is rebased to submit→now so call-plan and
        scan-plan queries measure end-to-end on the same clock (the
        inner serial call's latency excludes the admission wait).
        """
        result = fn()
        stats = dataclasses.replace(
            result.stats,
            latency_s=time.perf_counter() - task.submit_t,
            queue_wait_ms=(task.admit_t - task.submit_t) * 1e3,
            **(extra or {}),
        )
        self._resolve(
            task,
            result=SearchResult(neighbors=result.neighbors, stats=stats),
        )

    # ------------------------------------------------------------------
    # Completion + lifecycle
    # ------------------------------------------------------------------

    def _fail_task(self, task, exc: BaseException) -> None:
        """Fail exactly one query without poisoning the shared stage."""
        with task.lock:
            if task.failed:
                return
            task.failed = True
            already_finished = task.finished
            task.finished = True
        if not task.future.done():
            task.future.set_exception(exc)
        if not already_finished:
            self._retire(task, failed=True)

    def _resolve(self, task, result=None, exc=None) -> None:
        with task.lock:
            task.finished = True
            if exc is not None:
                task.failed = True
        if exc is not None:
            if not task.future.done():
                task.future.set_exception(exc)
            self._retire(task, failed=True)
            return
        if not task.future.done():
            task.future.set_result(result)
        self._retire(task, failed=False)

    def _retire(self, task, failed: bool) -> None:
        with self._cv:
            self._active.discard(task)
            if failed:
                self._failed += 1
            else:
                self._completed += 1
            self._cv.notify_all()
        self._m_resolved.inc(outcome="failed" if failed else "completed")
        self._pump()

    @property
    def inflight(self) -> int:
        with self._cv:
            return len(self._active)

    @property
    def queued(self) -> int:
        with self._cv:
            return len(self._waiting)

    def counters(self) -> tuple[int, int, int]:
        """(submitted, completed, failed) lifetime counters."""
        with self._cv:
            return self._submitted, self._completed, self._failed

    def drain(self) -> None:
        """Block until every admitted query has resolved."""
        with self._cv:
            while self._active or self._waiting:
                self._cv.wait()

    def close(self) -> None:
        """Deterministic shutdown: reject new queries, cancel the
        admission queue, complete in-flight ones, join every thread.

        Idempotent; after it returns no ``micronn-serve*`` thread of
        this scheduler is alive.
        """
        with self._cv:
            self._closed = True
            cancelled = list(self._waiting)
            self._waiting.clear()
        for task in cancelled:
            task.future.cancel()
        with self._cv:
            while self._active:
                self._cv.wait()
            self._stop = True
            self._cv.notify_all()
        # Join unconditionally (Thread.join is idempotent): a second
        # concurrent close() must not return while the first is still
        # reaping micronn-serve-io-* threads.
        for thread in self._io_threads:
            thread.join()
        self._compute_pool.shutdown(wait=True)


class _CallTask:
    """A query executed as one serial call under admission control."""

    __slots__ = (
        "fn", "future", "lock", "failed", "finished", "submit_t",
        "admit_t", "stats_extra",
    )

    def __init__(self, fn: Callable[[], SearchResult]) -> None:
        self.fn = fn
        self.future: Future = Future()
        self.lock = threading.Lock()
        self.failed = False
        self.finished = False
        self.submit_t = time.perf_counter()
        self.admit_t = self.submit_t
        self.stats_extra: dict | None = None
