"""Concurrent query serving layer (the ROADMAP async/MQO items).

Turns MicroNN from a one-query-at-a-time library into a serving
engine: :class:`QueryScheduler` multiplexes many in-flight queries over
one shared, centroid-distance-prioritized I/O stage with cross-query
read coalescing and bounded admission control; :class:`Session` is the
client-facing handle. Entry points on the facade:
``MicroNN.search_async`` (a future), ``MicroNN.search_asyncio`` (an
awaitable) and ``MicroNN.serve_session``.

The sharded engine (:mod:`repro.shard`) composes this layer per shard:
a scattered query runs through every shard's own scheduler (one shared
I/O stage per shard, its width split across the fleet — see
``ShardedMicroNN._per_shard_config``), and ``Session`` works unchanged
over a :class:`~repro.shard.ShardedMicroNN` because submission goes
through the facade's ``search_async``.
"""

from repro.serve.scheduler import QueryScheduler
from repro.serve.session import ServeStats, Session

__all__ = ["QueryScheduler", "ServeStats", "Session"]
