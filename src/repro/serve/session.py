"""Serving sessions: many in-flight queries, one drain point.

A :class:`Session` is the client-facing handle on the concurrent
scheduler: submit as many queries as you like (each returns a
:class:`~concurrent.futures.Future`), then ``drain()`` for the results
in submission order. Sessions are cheap — open one per request burst,
or keep one per client; all sessions of a database share the same
scheduler, admission control and coalesced I/O stage.

    with db.serve_session() as session:
        futures = [session.submit(q, k=10) for q in queries]
        results = session.drain()
    print(session.stats())
"""

from __future__ import annotations

import contextlib
from concurrent.futures import Future
from dataclasses import dataclass

import numpy as np

from repro.core.types import SearchResult


@dataclass(frozen=True)
class ServeStats:
    """Aggregate view of one session's completed queries."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    #: Sum of per-query ``io_shared_hits`` — partition loads served by
    #: a read shared with another concurrent query.
    io_shared_hits: int = 0
    #: Sum of per-query ``partitions_skipped`` (adaptive nprobe).
    partitions_skipped: int = 0
    avg_queue_wait_ms: float = 0.0
    max_queue_wait_ms: float = 0.0

    @property
    def sharing_rate(self) -> float:
        """Shared loads per completed query (coalescing effectiveness)."""
        if self.completed == 0:
            return 0.0
        return self.io_shared_hits / self.completed


class Session:
    """Tracks the futures one client has in flight.

    Thin by design: submission goes straight to
    ``MicroNN.search_async`` (same signature as ``search``), so a
    session adds only ordering (``drain`` preserves submission order)
    and aggregation (``stats``). Used as a context manager it drains on
    clean exit, so no query outlives the ``with`` block unnoticed.
    """

    def __init__(self, db) -> None:
        self._db = db
        self._futures: list[Future] = []
        self._session_closed = False

    def submit(self, query: np.ndarray, **kwargs) -> Future:
        """Submit one query (keywords as in ``MicroNN.search``)."""
        future = self._db.search_async(query, **kwargs)
        self._futures.append(future)
        return future

    def __len__(self) -> int:
        return len(self._futures)

    def drain(self) -> list[SearchResult]:
        """Wait for every submitted query; results in submission order.

        A failed query raises its exception here (the first one, in
        submission order); the remaining futures keep their state and
        can still be inspected individually.
        """
        return [future.result() for future in self._futures]

    def stats(self) -> ServeStats:
        """Aggregate stats over queries that have completed so far."""
        completed = failed = shared = skipped = 0
        waits: list[float] = []
        for future in self._futures:
            if not future.done():
                continue
            if future.cancelled() or future.exception() is not None:
                failed += 1
                continue
            completed += 1
            stats = future.result().stats
            shared += stats.io_shared_hits
            skipped += stats.partitions_skipped
            waits.append(stats.queue_wait_ms)
        return ServeStats(
            submitted=len(self._futures),
            completed=completed,
            failed=failed,
            io_shared_hits=shared,
            partitions_skipped=skipped,
            avg_queue_wait_ms=sum(waits) / len(waits) if waits else 0.0,
            max_queue_wait_ms=max(waits) if waits else 0.0,
        )

    def close(self) -> None:
        """Wait for every in-flight query; never raises, safe to repeat.

        Unlike :meth:`drain` a failed or cancelled query does not
        re-raise here — inspect :meth:`stats` or the individual futures
        for failures — so ``close()`` belongs in ``finally`` blocks and
        is idempotent by construction.
        """
        if self._session_closed:
            return
        self._session_closed = True
        for future in self._futures:
            with contextlib.suppress(BaseException):
                future.result()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, *exc_info: object) -> None:
        if exc_type is None:
            self.drain()
        self.close()
