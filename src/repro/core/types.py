"""Public result and statistics types returned by the MicroNN API.

These are small immutable dataclasses: a query returns a
:class:`SearchResult` (ranked :class:`Neighbor` entries plus a
:class:`QueryStats` describing how the query was executed), and index
operations return :class:`IndexStats` / :class:`MaintenanceReport`
describing what they did. Benchmarks and the index monitor consume the
stats; applications usually only look at the neighbours.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Sequence

if TYPE_CHECKING:
    from repro.obs.trace import QueryTrace


class PlanKind(enum.Enum):
    """Execution strategy chosen for a (hybrid) query (paper §3.5)."""

    #: Plain ANN over the IVF index (no attribute filter).
    ANN = "ann"
    #: Exact KNN via full scan.
    EXACT = "exact"
    #: Evaluate the attribute filter first, brute-force over survivors.
    PRE_FILTER = "pre_filter"
    #: ANN scan with the filter applied during partition retrieval.
    POST_FILTER = "post_filter"


@dataclass(frozen=True, slots=True)
class Neighbor:
    """One ranked search hit."""

    asset_id: str
    distance: float

    def __iter__(self) -> Iterator[object]:
        # Allow ``for asset_id, distance in result`` style unpacking.
        yield self.asset_id
        yield self.distance


@dataclass(frozen=True, slots=True)
class QueryStats:
    """Execution trace of one query, used by benchmarks and tests."""

    plan: PlanKind
    nprobe: int = 0
    partitions_scanned: int = 0
    vectors_scanned: int = 0
    distance_computations: int = 0
    rows_filtered: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    bytes_read: int = 0
    latency_s: float = 0.0
    #: Selectivity factor estimated by the optimizer (hybrid queries).
    estimated_selectivity: float | None = None
    #: The IVF selectivity threshold the optimizer compared against.
    ivf_selectivity: float | None = None
    #: How partitions were scanned: ``"float32"`` full-precision blobs,
    #: ``"sq8"`` scalar-quantized codes, or ``"pq"`` product-quantized
    #: codes via ADC lookup tables — the quantized modes both rerank
    #: exactly.
    scan_mode: str = "float32"
    #: Number of approximate candidates re-scored against their
    #: full-precision vectors (quantized scans only).
    candidates_reranked: int = 0
    #: Milliseconds spent loading + decoding partitions. When the scan
    #: was pipelined this is summed across I/O tasks, so
    #: ``io_time_ms + compute_time_ms > latency_s * 1e3`` is the
    #: direct signature of I/O–compute overlap.
    io_time_ms: float = 0.0
    #: Milliseconds spent in distance kernels + heap maintenance
    #: (summed across compute workers when pipelined).
    compute_time_ms: float = 0.0
    #: Whether the two-stage I/O–compute pipeline executed this scan
    #: (cache-cold ANN scans with ``pipeline_depth > 0``).
    scan_pipelined: bool = False
    #: Partitions in the probe set that adaptive-nprobe early
    #: termination skipped (``adaptive_nprobe_margin``): their centroid
    #: distance already exceeded the k-th candidate by the margin, so
    #: they were never scored — and not read either, except on the
    #: serving path when another concurrent query still needed the
    #: same partition (the shared read then happens for that query).
    partitions_skipped: int = 0
    #: Of this query's partition loads, how many were shared with at
    #: least one other concurrent query (the serving layer's cross-
    #: query I/O coalescing: one read + decode, N scoring consumers).
    io_shared_hits: int = 0
    #: Milliseconds this query waited in the serving layer's admission
    #: queue before a slot (and scratch-memory headroom) freed up.
    #: Always 0 for the synchronous ``search()`` path.
    queue_wait_ms: float = 0.0
    #: How many shards of a sharded database this query scattered to
    #: (``repro.shard.ShardedMicroNN``); 0 on a single-database query.
    #: On an aggregated sharded result the cost counters above
    #: (bytes/io/compute/scans) are sums over the per-shard stats.
    shards_probed: int = 0
    #: Probe-set partitions served as empty because a stored checksum
    #: mismatch quarantined them (bit-rot containment): the query
    #: succeeded but its recall is degraded until ``repair()`` runs.
    partitions_quarantined: int = 0
    #: True when this result is known to be incomplete — at least one
    #: partition was quarantined (or, on a sharded aggregate, at least
    #: one shard failed to answer). The neighbours returned are still
    #: correct for the data that was reachable.
    degraded: bool = False


@dataclass(frozen=True, slots=True)
class SearchResult:
    """Ranked neighbours plus the stats of the query that produced them."""

    neighbors: tuple[Neighbor, ...]
    stats: QueryStats
    #: Per-query span forest (``repro.obs.trace.QueryTrace``), present
    #: only when the query ran with ``trace=True``; render it with
    #: ``result.trace.to_chrome_trace()`` and load in Perfetto.
    trace: "QueryTrace | None" = None

    def __len__(self) -> int:
        return len(self.neighbors)

    def __iter__(self) -> Iterator[Neighbor]:
        return iter(self.neighbors)

    def __getitem__(self, idx: int) -> Neighbor:
        return self.neighbors[idx]

    @property
    def asset_ids(self) -> tuple[str, ...]:
        return tuple(n.asset_id for n in self.neighbors)

    @property
    def distances(self) -> tuple[float, ...]:
        return tuple(n.distance for n in self.neighbors)


@dataclass(frozen=True, slots=True)
class PartitionInfo:
    """Size and identity of one IVF partition."""

    partition_id: int
    size: int


@dataclass(frozen=True, slots=True)
class IndexStats:
    """Snapshot of index state, as tracked by the index monitor (§3.6)."""

    total_vectors: int
    indexed_vectors: int
    delta_vectors: int
    num_partitions: int
    avg_partition_size: float
    max_partition_size: int
    min_partition_size: int
    #: Average partition size recorded at the last full build; the
    #: monitor compares against this to decide when to rebuild.
    baseline_avg_partition_size: float
    #: Partition-storage quantization scheme in effect
    #: ("none"/"sq8"/"pq").
    quantization: str = "none"
    #: Vectors with a stored quantized code (indexed partitions only;
    #: the delta stays full-precision on disk until maintenance folds
    #: it in).
    quantized_vectors: int = 0
    #: Stored scan-code bytes per vector once a quantizer is trained
    #: (``dim`` for sq8, ``pq_num_subvectors`` for pq; 0 before
    #: training or with quantization off) — the PQ-vs-SQ8 choice made
    #: observable.
    code_bytes_per_vector: int = 0
    #: Achieved scan-payload compression vs float32 partitions
    #: (``4 * dim / code_bytes_per_vector``; 1.0 when scans are
    #: full-precision).
    compression_ratio: float = 1.0
    #: Physical layout serving this index ("sqlite-row" /
    #: "sqlite-packed" / "memory").
    storage_backend: str = "sqlite-row"
    #: Whether the observability substrate (metrics registry + event
    #: log) is recording for this database.
    telemetry_enabled: bool = True
    #: Partitions currently quarantined by checksum mismatches (served
    #: as empty — degraded, never wrong — until ``repair()``).
    quarantined_partitions: int = 0
    #: Lifetime structured events emitted (survives ring eviction).
    events_logged: int = 0
    #: Lifetime queries over the ``slow_query_ms`` threshold.
    slow_queries: int = 0
    #: Append-only garbage in the blobfile backend's blob file:
    #: records superseded by rewrites or orphaned by rolled-back
    #: appends. Always 0 on the other backends.
    storage_dead_bytes: int = 0
    #: ``storage_dead_bytes`` as a fraction of the blob-file size —
    #: the signal ``maintain()`` compares against
    #: ``blob_compact_min_dead_ratio`` to trigger compaction. 0.0 on
    #: the other backends (and on an empty blob file).
    storage_dead_ratio: float = 0.0
    #: Queries shadow-audited by the recall auditor (0 when
    #: ``audit_sample_rate`` is 0).
    audited_queries: int = 0
    #: Mean audited recall@k across every shadow audit (0.0 when
    #: nothing has been audited yet — check ``audited_queries``).
    audit_recall_mean: float = 0.0
    #: ``recall_dip`` events the auditor has emitted.
    recall_dips: int = 0

    @property
    def partition_growth(self) -> float:
        """Fractional growth of avg partition size since the last build."""
        if self.baseline_avg_partition_size <= 0:
            return 0.0
        return (
            self.avg_partition_size / self.baseline_avg_partition_size
        ) - 1.0


class MaintenanceAction(enum.Enum):
    """What :meth:`MicroNN.maintain` decided to do."""

    NONE = "none"
    INCREMENTAL_FLUSH = "incremental_flush"
    FULL_REBUILD = "full_rebuild"


@dataclass(frozen=True, slots=True)
class MaintenanceReport:
    """Outcome of one maintenance cycle (incremental flush or rebuild)."""

    action: MaintenanceAction
    vectors_flushed: int = 0
    centroids_updated: int = 0
    row_changes: int = 0
    duration_s: float = 0.0
    stats_before: IndexStats | None = None
    stats_after: IndexStats | None = None


@dataclass(frozen=True, slots=True)
class BuildReport:
    """Outcome of a full index build."""

    num_vectors: int
    num_partitions: int
    iterations: int
    minibatch_size: int
    row_changes: int
    duration_s: float
    peak_memory_bytes: int


@dataclass(frozen=True)
class BatchSearchResult:
    """Results for a batch of queries executed with MQO (paper §3.4)."""

    results: Sequence[SearchResult]
    #: Number of distinct partitions scanned for the whole batch.
    partitions_scanned: int = 0
    #: Sum over queries of the partitions each would have scanned alone.
    partitions_requested: int = 0
    latency_s: float = 0.0
    stats: QueryStats | None = None
    extras: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[SearchResult]:
        return iter(self.results)

    def __getitem__(self, idx: int) -> SearchResult:
        return self.results[idx]

    @property
    def amortized_latency_s(self) -> float:
        """Average wall-clock latency per query in the batch."""
        if not self.results:
            return 0.0
        return self.latency_s / len(self.results)

    @property
    def scan_sharing_factor(self) -> float:
        """How many per-query partition scans each physical scan served."""
        if self.partitions_scanned <= 0:
            return 1.0
        return self.partitions_requested / self.partitions_scanned
