"""Configuration objects for MicroNN databases and device profiles.

The paper evaluates on two device-under-test (DUT) classes — *Small*
(single-digit GiB of memory) and *Large* (a few tens of GiB) — and three
cache scenarios (InMemory, ColdStart, WarmCache). :class:`DeviceProfile`
captures the resource knobs that differ between them: worker threads,
partition-cache budget, SQLite page-cache budget, and an optional I/O
cost model used by benchmarks to emulate storage latency on fast hosts.

:class:`MicroNNConfig` carries everything needed to open a database:
vector dimensionality, distance metric, index tuning parameters
(target cluster size, mini-batch settings from Algorithm 1), and the
declared attribute schema for hybrid search.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Mapping

from repro.core.errors import ConfigError

#: Metrics supported by the distance kernels.
SUPPORTED_METRICS = ("l2", "cosine", "dot")

#: Physical storage layouts (see ``repro.storage.backends``):
#: ``"sqlite-row"`` is the paper's row-per-vector clustered table,
#: ``"sqlite-packed"`` stores one contiguous blob per partition,
#: ``"blobfile"`` keeps partition payloads in an mmap'd append-only
#: blob file next to the SQLite metadata (zero-copy scans), and
#: ``"memory"`` keeps the row layout in a shared in-memory database.
SUPPORTED_STORAGE_BACKENDS = (
    "sqlite-row",
    "sqlite-packed",
    "blobfile",
    "memory",
)


def _default_storage_backend() -> str:
    """Default backend, overridable via ``MICRONN_TEST_BACKEND``.

    The environment hook is what lets CI run the whole tier-1 suite
    under each backend without touching any test: every default-
    constructed config picks the axis value up here.
    """
    return os.environ.get("MICRONN_TEST_BACKEND", "sqlite-row")

#: SQL column types that may be declared for filterable attributes.
SUPPORTED_ATTRIBUTE_TYPES = ("TEXT", "INTEGER", "REAL")

#: Partition-storage quantization schemes supported by the scan path.
SUPPORTED_QUANTIZATION = ("none", "sq8", "pq")

#: Reserved partition identifier for the delta-store (paper §3.6: the
#: delta-store is physically co-located with the IVF index and addressed
#: by a reserved partition id so it shares the clustered layout).
DELTA_PARTITION_ID = -1


@dataclass(frozen=True)
class IOCostModel:
    """Synthetic storage latency, used to emulate device storage.

    The paper measures on real devices whose storage is much slower than
    a benchmark host's page cache. To reproduce cold/warm and Small/Large
    *shapes* on any machine, uncached partition reads may be charged a
    per-request seek cost plus a per-byte transfer cost. A zero model
    (the default) disables injection entirely.
    """

    seek_latency_s: float = 0.0
    per_byte_latency_s: float = 0.0

    def cost(self, nbytes: int) -> float:
        """Return the simulated latency for reading ``nbytes`` from disk."""
        if nbytes <= 0:
            return 0.0
        return self.seek_latency_s + nbytes * self.per_byte_latency_s

    @property
    def enabled(self) -> bool:
        return self.seek_latency_s > 0.0 or self.per_byte_latency_s > 0.0


@dataclass(frozen=True)
class DeviceProfile:
    """Resource envelope of a device under test.

    Parameters mirror the constraints in paper §2.1: constrained shared
    memory (cache budgets), varying compute (worker threads), and flash
    storage characteristics (I/O model).
    """

    name: str = "large"
    worker_threads: int = 8
    partition_cache_bytes: int = 64 * 1024 * 1024
    sqlite_cache_bytes: int = 8 * 1024 * 1024
    #: Budget for the reusable scratch buffers the pipelined scan
    #: decodes partitions into when they cannot be admitted to the
    #: partition cache (e.g. a zero cache budget). Checked-out buffers
    #: are pinned and accounted to the memory tracker; ``0`` disables
    #: pooling and falls back to per-scan allocations.
    scratch_buffer_bytes: int = 16 * 1024 * 1024
    io_model: IOCostModel = field(default_factory=IOCostModel)

    def __post_init__(self) -> None:
        if self.worker_threads < 1:
            raise ConfigError("worker_threads must be >= 1")
        if self.partition_cache_bytes < 0:
            raise ConfigError("partition_cache_bytes must be >= 0")
        if self.sqlite_cache_bytes < 0:
            raise ConfigError("sqlite_cache_bytes must be >= 0")
        if self.scratch_buffer_bytes < 0:
            raise ConfigError("scratch_buffer_bytes must be >= 0")

    @classmethod
    def small(cls, io_model: IOCostModel | None = None) -> "DeviceProfile":
        """Small DUT: single-digit GiB device (paper §4.1.2)."""
        return cls(
            name="small",
            worker_threads=2,
            partition_cache_bytes=8 * 1024 * 1024,
            sqlite_cache_bytes=2 * 1024 * 1024,
            scratch_buffer_bytes=4 * 1024 * 1024,
            io_model=io_model or IOCostModel(),
        )

    @classmethod
    def large(cls, io_model: IOCostModel | None = None) -> "DeviceProfile":
        """Large DUT: a few tens of GiB of memory (paper §4.1.2)."""
        return cls(
            name="large",
            worker_threads=8,
            partition_cache_bytes=64 * 1024 * 1024,
            sqlite_cache_bytes=8 * 1024 * 1024,
            io_model=io_model or IOCostModel(),
        )


@dataclass(frozen=True)
class MicroNNConfig:
    """Configuration for a MicroNN database instance.

    Parameters
    ----------
    dim:
        Dimensionality of all stored vectors.
    metric:
        Distance metric: ``"l2"`` (Euclidean), ``"cosine"``, or ``"dot"``
        (inner product; larger is closer, internally negated).
    target_cluster_size:
        Target number of vectors per IVF partition; the number of
        clusters is ``max(1, |X| / target_cluster_size)`` (Algorithm 1,
        default 100 as in the paper).
    minibatch_size:
        Mini-batch size ``s`` for the clustering algorithm. ``None``
        derives a batch from ``minibatch_fraction``.
    minibatch_fraction:
        Mini-batch size as a fraction of the dataset (used when
        ``minibatch_size`` is ``None``); Figure 8 sweeps this knob.
    kmeans_iterations:
        Number of mini-batch iterations ``n``. ``None`` chooses a
        heuristic based on dataset and batch size so every vector is
        expected to be sampled a few times.
    balance_penalty:
        Weight of the cluster-size penalty in the ``NEAREST`` routine
        (flexible balance constraints, Liu et al. 2018). ``0`` disables
        balancing; the ablation bench sweeps this.
    default_nprobe:
        Default number of IVF partitions scanned per query (``n`` in
        Algorithm 2).
    attributes:
        Declared attribute schema: mapping of attribute name to SQL type
        (``TEXT``/``INTEGER``/``REAL``). Only declared attributes may be
        stored and filtered (paper §3.5: clients define filterable
        attributes, indexed with SQLite b-trees).
    fts_attributes:
        Subset of TEXT attributes additionally indexed for full-text
        ``MATCH`` filters (paper §3.5: FTS index over filterable
        attributes).
    delta_flush_threshold:
        Number of delta-store vectors that triggers an incremental flush
        during :meth:`~repro.core.database.MicroNN.maintain`.
    rebuild_growth_threshold:
        Fractional growth of the average partition size (relative to the
        size at the last full build) that triggers a full rebuild; the
        paper's update experiment (Fig. 10) uses 0.5 (50% growth).
    quantization:
        Partition-storage quantization scheme: ``"none"`` (default,
        float32 scans, byte-identical on-disk layout to prior
        versions), ``"sq8"`` (int8 scalar-quantized scan codes; ~4x
        less partition I/O) or ``"pq"`` (product-quantized codes
        scanned via ADC lookup tables; ``4 * dim / M``x less partition
        I/O). Both quantized modes rerank exactly.
    rerank_factor:
        With a quantized scan, the number of approximate candidates
        kept for exact reranking, as a multiple of ``k``.
    pipeline_depth:
        Bounded-queue depth of the partition-scan I/O–compute pipeline
        (``0`` disables pipelining; scans fall back to the serial
        load-then-score path).
    io_prefetch_threads:
        Worker threads dedicated to the pipeline's I/O stage; the rest
        of ``device.worker_threads`` score partitions as they arrive.
    device:
        Resource envelope for query processing.
    seed:
        RNG seed used by clustering for reproducible builds.
    """

    dim: int
    metric: str = "l2"
    target_cluster_size: int = 100
    minibatch_size: int | None = None
    minibatch_fraction: float = 0.05
    kmeans_iterations: int | None = None
    balance_penalty: float = 1.0
    default_nprobe: int = 8
    attributes: Mapping[str, str] = field(default_factory=dict)
    fts_attributes: tuple[str, ...] = ()
    delta_flush_threshold: int = 1000
    rebuild_growth_threshold: float = 0.5
    #: When set, partition selection switches from a flat centroid scan
    #: to a two-level coarse index once the centroid table reaches this
    #: many rows (the paper's §3.2 "index the centroid table" extension;
    #: ``None`` keeps the paper's default flat scan).
    centroid_index_threshold: int | None = None
    centroid_index_cell_size: int = 64
    centroid_index_oversample: float = 4.0
    #: Partition-storage quantization: ``"none"`` keeps the paper's
    #: float32 scan path (and an on-disk layout byte-identical to it);
    #: ``"sq8"`` stores int8 scalar-quantized codes alongside the
    #: float32 blobs and scans the codes — ~4x less partition I/O;
    #: ``"pq"`` stores product-quantized codes (``pq_num_subvectors``
    #: bytes per vector, ``4 * dim / M``x less partition I/O — 32x at
    #: dim=128 with M=16) scanned with per-query ADC lookup tables.
    #: Both quantized modes rerank the top ``rerank_factor * k``
    #: candidates against the full-precision vectors. The delta
    #: partition always stays full-precision on disk so upserts stay
    #: one cheap row write; see ``delta_quantize_threshold`` for the
    #: in-memory lazy encoding of a large delta.
    quantization: str = "none"
    #: Oversampling factor of the quantized scan: the scan keeps
    #: ``rerank_factor * k`` approximate candidates and re-scores them
    #: exactly. Higher values trade rerank I/O for recall; PQ's larger
    #: per-code error usually wants this at least as high as SQ8's.
    rerank_factor: int = 4
    #: Number of PQ sub-vectors ``M`` (``quantization="pq"``). Each
    #: stored code is M bytes; M must divide ``dim`` evenly (validated
    #: here, at config time, instead of surfacing as a reshape error in
    #: the middle of codebook training). Smaller M compresses harder
    #: but quantizes coarser.
    pq_num_subvectors: int = 8
    #: Upper bound on the vectors sampled to train PQ codebooks. Sub-
    #: space k-means is quadratic-ish in the sample, and codebooks
    #: converge long before the full collection is seen; the builder
    #: draws a seeded uniform sample of at most this many vectors.
    pq_train_sample: int = 10_000
    #: Lazily quantize the delta partition once it holds at least this
    #: many vectors: the first quantized scan past the threshold
    #: encodes the (full-precision, on-disk) delta with the active
    #: quantizer and caches the codes in memory, so delta-heavy upsert
    #: workloads stop re-reading the float32 delta on every query.
    #: Any delta write invalidates the cached codes. ``None`` disables
    #: lazy encoding and scans the delta exactly, always.
    delta_quantize_threshold: int | None = 4096
    #: Depth of the partition-scan pipeline: how many loaded-but-not-
    #: yet-scored partitions may sit in the bounded queue between the
    #: I/O stage and the compute stage. While partition ``N`` is being
    #: scored, up to ``pipeline_depth`` later partitions are already
    #: being read and decoded, so the disk and the cores stay busy at
    #: the same time. ``0`` disables the pipeline entirely (the serial
    #: load-then-score path, the A/B baseline). The pipeline engages
    #: only when at least one selected partition is cache-cold — fully
    #: warm scans keep the lower-overhead serial path.
    pipeline_depth: int = 2
    #: Number of worker threads dedicated to the pipeline's I/O stage
    #: (reading + decoding partitions). The compute stage gets the
    #: remaining ``worker_threads`` (at least one). One I/O thread is
    #: usually right: SQLite range reads are sequential and tiny reads
    #: fanned across threads convoy on the GIL, but a slow-flash device
    #: profile can raise it to keep the queue fed.
    io_prefetch_threads: int = 1
    #: Adaptive nprobe early termination: once a scan's top-K candidate
    #: set is full, a remaining partition is skipped when its centroid
    #: distance exceeds the current k-th candidate distance by more
    #: than ``margin * abs(kth)`` (internal smaller-is-closer space).
    #: ``None`` (the default) disables the check and keeps every scan
    #: exhaustive over its probe set. This is a recall/latency knob:
    #: small margins prune aggressively, large margins almost never
    #: fire. The delta partition is never skipped. The margin is
    #: *relative* (``margin * abs(kth)``), so it degenerates toward
    #: margin-0 behavior when the k-th distance is near zero — routine
    #: with the ``dot`` metric, whose internal distances cross zero —
    #: so prefer this knob with ``l2``/``cosine``. Note that pruning
    #: decisions depend on the order partitions are scored in, so on
    #: concurrent paths (the pipelined scan, the serving scheduler)
    #: adaptive runs are recall-equivalent within the margin rather
    #: than bit-reproducible; only the single-threaded serial loop is
    #: deterministic. Bit-identity guarantees elsewhere in the API
    #: assume this knob is unset. The batch MQO path (``search_batch``)
    #: does not implement the check — its inverted partition→queries
    #: loop has no per-query scan order to terminate — and scans its
    #: probe sets exhaustively regardless of this setting.
    adaptive_nprobe_margin: float | None = None
    #: Admission bound of the concurrent serving layer: how many
    #: queries submitted through ``search_async``/``serve.Session`` may
    #: be in flight at once. Further submissions queue (their wait is
    #: surfaced as ``QueryStats.queue_wait_ms``) until a slot frees AND
    #: the scratch-buffer pool is back under its memory budget.
    max_inflight_queries: int = 8
    #: Threads of the serving layer's *shared* I/O stage (one stage
    #: multiplexed across every in-flight query, unlike
    #: ``io_prefetch_threads`` which is per query). ``None`` derives
    #: ``max(io_prefetch_threads, min(8, device.worker_threads))`` — a
    #: server overlaps storage latency across queries, so it wants more
    #: I/O parallelism than any single query does.
    serve_io_threads: int | None = None
    #: Physical storage layout (``repro.storage.backends``):
    #: ``"sqlite-row"`` (default) is the paper's row-per-vector
    #: clustered table; ``"sqlite-packed"`` stores each partition as
    #: one contiguous blob, eliminating the ~40 bytes/row of SQLite
    #: key+record overhead that dominates partition reads once codes
    #: shrink to PQ widths; ``"memory"`` keeps the row layout in a
    #: process-local in-memory database (tests/benchmarks). Search
    #: results are bit-identical across backends; the choice is
    #: persisted in the database (and shard manifest) and validated on
    #: reopen.
    storage_backend: str = field(default_factory=_default_storage_backend)
    #: Verify rerank point-reads against the stored partition CRCs.
    #: Off (the default), a point-fetch slices the requested rows
    #: straight out of storage — the fastest path, but a flipped byte
    #: in a fetched row would go unnoticed until the next scrub. On,
    #: point-fetches resolve through the CRC-verified partition-load
    #: path instead, so rerank reads inherit the same
    #: degraded-never-wrong guarantee as cold scans, at the cost of
    #: loading (and caching) each touched partition.
    verify_point_reads: bool = False
    #: Byte budget of the amortized background scrub that runs inside
    #: every ``maintain()`` pass: partitions are CRC-verified
    #: round-robin (cursor persisted in the meta table) until the
    #: budget is spent, so a full sweep is spread over many passes
    #: instead of stalling one. ``None`` (the default) disables the
    #: background scrub; explicit ``verify()`` calls are unaffected.
    scrub_budget_bytes: int | None = None
    #: Dead-byte ratio of the blobfile backend's append-only file at
    #: which ``maintain()`` schedules a compaction (copy-live-forward
    #: into a new generation, atomic swap). Ignored by the other
    #: backends.
    blob_compact_min_dead_ratio: float = 0.3
    #: Upper bound on the bytes a single ``maintain()``-scheduled
    #: compaction may copy (the live bytes of the blob file). When the
    #: live set exceeds the budget the pass skips compaction rather
    #: than blowing through it. ``None`` (the default) means no bound.
    blob_compact_budget_bytes: int | None = None
    #: Bounded retry budget for transient ``database is locked``
    #: errors when acquiring the write transaction: after the
    #: in-connection busy timeout expires, the engine retries ``BEGIN
    #: IMMEDIATE`` up to this many more times before surfacing a
    #: :class:`~repro.core.errors.WriteConflictError`. ``0`` fails on
    #: the first locked error.
    busy_retries: int = 4
    #: Base backoff between busy retries, in milliseconds. Each retry
    #: doubles it and adds uniform jitter so two contending writers do
    #: not re-collide in lockstep.
    busy_backoff_ms: float = 10.0
    #: Master switch for the observability substrate (``repro.obs``):
    #: the engine-owned metrics registry and structured event log.
    #: Disabled, every instrument call collapses to one attribute
    #: check (the no-op fast path gated by
    #: ``benchmarks/bench_obs_overhead.py``). Per-query tracing is
    #: independent of this switch — it only runs when a search passes
    #: ``trace=True``.
    telemetry_enabled: bool = True
    #: Queries slower than this wall-clock threshold (milliseconds)
    #: emit a ``slow_query`` event into the structured event log.
    slow_query_ms: float = 250.0
    #: Capacity of the bounded in-memory event ring; the oldest events
    #: are evicted first, lifetime per-kind counts are kept exactly.
    event_log_capacity: int = 512
    #: Optional JSONL sink: every emitted event is also appended to
    #: this path as one JSON object per line (opened lazily on first
    #: emit). Shards sharing one config append to the same file.
    event_log_path: str | None = None
    #: Fraction of approximate queries (ANN / post-filter plans) the
    #: shadow recall auditor re-executes on the exact scan path, in
    #: [0, 1]. The decision is a seeded, platform-stable hash of the
    #: query bytes, so the same query is always (or never) audited
    #: under a given seed. ``0.0`` (the default) disables auditing
    #: entirely — no worker thread, no hot-path hash.
    audit_sample_rate: float = 0.0
    #: Hard cap on shadow audits started per minute, bounding the
    #: background exact-scan work regardless of traffic volume.
    #: Over-budget samples are dropped and counted
    #: (``micronn_audit_dropped_total{reason="rate_capped"}``).
    audit_max_per_min: int = 600
    #: When the sliding-window mean of audited recall@k falls below
    #: this floor, the auditor emits a ``recall_dip`` event (and the
    #: advisor recommends the recall knobs). In [0, 1].
    audit_recall_floor: float = 0.9
    #: Audited queries per sliding window: the dip check fires only on
    #: a full window and then re-arms, so a sustained regression emits
    #: one event per window span.
    audit_window: int = 32
    #: Per-partition rows the workload heatmap retains; the least-
    #: recently-touched quarter is evicted on overflow.
    workload_heatmap_partitions: int = 4096
    device: DeviceProfile = field(default_factory=DeviceProfile.large)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.dim < 1:
            raise ConfigError(f"dim must be >= 1, got {self.dim}")
        if self.metric not in SUPPORTED_METRICS:
            raise ConfigError(
                f"metric must be one of {SUPPORTED_METRICS}, "
                f"got {self.metric!r}"
            )
        if self.target_cluster_size < 1:
            raise ConfigError("target_cluster_size must be >= 1")
        if self.minibatch_size is not None and self.minibatch_size < 1:
            raise ConfigError("minibatch_size must be >= 1 when given")
        if not 0.0 < self.minibatch_fraction <= 1.0:
            raise ConfigError("minibatch_fraction must be in (0, 1]")
        if self.kmeans_iterations is not None and self.kmeans_iterations < 1:
            raise ConfigError("kmeans_iterations must be >= 1 when given")
        if self.balance_penalty < 0:
            raise ConfigError("balance_penalty must be >= 0")
        if self.default_nprobe < 1:
            raise ConfigError("default_nprobe must be >= 1")
        if self.delta_flush_threshold < 1:
            raise ConfigError("delta_flush_threshold must be >= 1")
        if self.rebuild_growth_threshold <= 0:
            raise ConfigError("rebuild_growth_threshold must be > 0")
        if (
            self.centroid_index_threshold is not None
            and self.centroid_index_threshold < 2
        ):
            raise ConfigError(
                "centroid_index_threshold must be >= 2 when set"
            )
        if self.centroid_index_cell_size < 1:
            raise ConfigError("centroid_index_cell_size must be >= 1")
        if self.centroid_index_oversample < 1.0:
            raise ConfigError("centroid_index_oversample must be >= 1.0")
        if self.quantization not in SUPPORTED_QUANTIZATION:
            raise ConfigError(
                f"quantization must be one of {SUPPORTED_QUANTIZATION}, "
                f"got {self.quantization!r}"
            )
        if self.rerank_factor < 1:
            raise ConfigError("rerank_factor must be >= 1")
        if self.pq_num_subvectors < 1:
            raise ConfigError("pq_num_subvectors must be >= 1")
        if self.pq_train_sample < 1:
            raise ConfigError("pq_train_sample must be >= 1")
        if (
            self.quantization == "pq"
            and self.dim % self.pq_num_subvectors != 0
        ):
            # Caught here, not as a reshape crash deep inside codebook
            # training: the PQ layout needs dim = M * dsub exactly.
            raise ConfigError(
                f"pq_num_subvectors must divide dim evenly: dim="
                f"{self.dim} is not a multiple of pq_num_subvectors="
                f"{self.pq_num_subvectors}"
            )
        if (
            self.delta_quantize_threshold is not None
            and self.delta_quantize_threshold < 1
        ):
            raise ConfigError(
                "delta_quantize_threshold must be >= 1 when set"
            )
        if self.pipeline_depth < 0:
            raise ConfigError("pipeline_depth must be >= 0")
        if self.io_prefetch_threads < 1:
            raise ConfigError("io_prefetch_threads must be >= 1")
        if (
            self.adaptive_nprobe_margin is not None
            and self.adaptive_nprobe_margin < 0
        ):
            raise ConfigError(
                "adaptive_nprobe_margin must be >= 0 when set"
            )
        # ``fault:<inner>`` wraps a real backend with the fault-
        # injecting test decorator (``repro.storage.backends.fault``);
        # the inner kind must itself be supported.
        backend_kind = self.storage_backend
        if backend_kind.startswith("fault:"):
            backend_kind = backend_kind[len("fault:"):]
        if backend_kind not in SUPPORTED_STORAGE_BACKENDS:
            raise ConfigError(
                f"storage_backend must be one of "
                f"{SUPPORTED_STORAGE_BACKENDS} (optionally prefixed "
                f"with 'fault:'), got {self.storage_backend!r}"
            )
        if (
            self.scrub_budget_bytes is not None
            and self.scrub_budget_bytes < 1
        ):
            raise ConfigError(
                "scrub_budget_bytes must be >= 1 when set"
            )
        if not 0.0 < self.blob_compact_min_dead_ratio <= 1.0:
            raise ConfigError(
                "blob_compact_min_dead_ratio must be in (0, 1]"
            )
        if (
            self.blob_compact_budget_bytes is not None
            and self.blob_compact_budget_bytes < 1
        ):
            raise ConfigError(
                "blob_compact_budget_bytes must be >= 1 when set"
            )
        if self.busy_retries < 0:
            raise ConfigError("busy_retries must be >= 0")
        if self.busy_backoff_ms < 0:
            raise ConfigError("busy_backoff_ms must be >= 0")
        if self.max_inflight_queries < 1:
            raise ConfigError("max_inflight_queries must be >= 1")
        if self.serve_io_threads is not None and self.serve_io_threads < 1:
            raise ConfigError("serve_io_threads must be >= 1 when set")
        if self.slow_query_ms <= 0:
            raise ConfigError("slow_query_ms must be > 0")
        if self.event_log_capacity < 1:
            raise ConfigError("event_log_capacity must be >= 1")
        if not 0.0 <= self.audit_sample_rate <= 1.0:
            raise ConfigError("audit_sample_rate must be in [0, 1]")
        if self.audit_max_per_min < 1:
            raise ConfigError("audit_max_per_min must be >= 1")
        if not 0.0 <= self.audit_recall_floor <= 1.0:
            raise ConfigError("audit_recall_floor must be in [0, 1]")
        if self.audit_window < 1:
            raise ConfigError("audit_window must be >= 1")
        if self.workload_heatmap_partitions < 1:
            raise ConfigError(
                "workload_heatmap_partitions must be >= 1"
            )
        self._validate_attributes()

    def _validate_attributes(self) -> None:
        for name, sql_type in self.attributes.items():
            if not name.isidentifier():
                raise ConfigError(
                    f"attribute name {name!r} must be a valid identifier"
                )
            if name.startswith("_") or name.lower() in _RESERVED_COLUMNS:
                raise ConfigError(f"attribute name {name!r} is reserved")
            if sql_type.upper() not in SUPPORTED_ATTRIBUTE_TYPES:
                raise ConfigError(
                    f"attribute {name!r} has unsupported type {sql_type!r}; "
                    f"supported: {SUPPORTED_ATTRIBUTE_TYPES}"
                )
        for name in self.fts_attributes:
            if name not in self.attributes:
                raise ConfigError(
                    f"fts attribute {name!r} is not a declared attribute"
                )
            if self.attributes[name].upper() != "TEXT":
                raise ConfigError(
                    f"fts attribute {name!r} must be TEXT, "
                    f"got {self.attributes[name]!r}"
                )

    @property
    def normalized_attributes(self) -> dict[str, str]:
        """Attribute schema with canonical upper-case SQL types."""
        return {name: t.upper() for name, t in self.attributes.items()}

    def with_device(self, device: DeviceProfile) -> "MicroNNConfig":
        """Return a copy of this config running on a different device."""
        return replace(self, device=device)

    def vector_nbytes(self) -> int:
        """Bytes of one encoded vector (float32 little-endian blob)."""
        return 4 * self.dim

    @property
    def uses_quantization(self) -> bool:
        return self.quantization != "none"

    @property
    def scan_code_width(self) -> int:
        """Stored bytes per quantized scan code for the active scheme.

        ``dim`` bytes for SQ8 (one per dimension), ``pq_num_subvectors``
        for PQ (one per sub-vector) — the blob width of every
        ``vector_codes`` row, and the denominator of the achieved
        compression ratio reported by :class:`IndexStats`.
        """
        if self.quantization == "pq":
            return self.pq_num_subvectors
        return self.dim

    @property
    def resolved_serve_io_threads(self) -> int:
        """The serving layer's shared I/O stage width (None resolved)."""
        if self.serve_io_threads is not None:
            return self.serve_io_threads
        return max(
            self.io_prefetch_threads, min(8, self.device.worker_threads)
        )


@dataclass(frozen=True)
class ShardConfig:
    """Layout of a sharded multi-database deployment.

    A :class:`~repro.shard.ShardedMicroNN` composes ``num_shards``
    independent per-shard databases behind one facade: writes route by
    a stable hash of the asset id, reads scatter to every shard and
    gather-merge into a global top-k. Each shard is a complete MicroNN
    database (own SQLite file, IVF index, quantizer, caches, serving
    scheduler), so shard count multiplies both write throughput (one
    writer lock per shard) and cold-read bandwidth (one I/O path per
    shard).

    Parameters
    ----------
    num_shards:
        How many per-shard databases back the facade. Persisted in the
        shard directory's manifest; reopening validates the manifest
        against this value (``None`` at open time adopts the
        manifest's count).
    router:
        Name of the write-routing scheme. ``"hash"`` (the built-in
        :class:`~repro.shard.HashRouter`) routes by a stable BLAKE2b
        hash of the asset id — deterministic across processes and
        platforms, unlike Python's seeded ``hash()``. Custom routers
        are pluggable: pass a router object to ``ShardedMicroNN`` and
        name it here so reopen can verify the same scheme is in use.
    serve_scatter_threshold:
        Fan-out width (``shards x concurrent queries``) at or above
        which the scatter stage runs each shard's scan through its own
        serving scheduler (:mod:`repro.serve`) instead of a serial
        per-shard loop. Small fan-outs stay serial: scheduler threads
        cost more than they overlap when only a couple of partitions
        are in flight per shard.
    """

    num_shards: int = 1
    router: str = "hash"
    serve_scatter_threshold: int = 4
    #: Per-shard wall-clock budget for one scattered query, in
    #: seconds. A shard that has not answered within the budget is
    #: treated as dead for that query: the gather returns the other
    #: shards' merged results tagged with the laggard in
    #: ``ShardedSearchResult.degraded_shards``. ``None`` (default)
    #: waits indefinitely — single-device deployments usually prefer
    #: a late answer over a partial one.
    shard_timeout_s: float | None = None
    #: How many times a failed shard query is retried (with backoff)
    #: before the shard is declared degraded for that query. Retries
    #: cover transient faults (a locked database file, a mid-repair
    #: hiccup); hard failures (missing file, closed shard) fail each
    #: attempt fast.
    shard_retries: int = 1
    #: Base backoff between shard retries, in milliseconds; doubles
    #: per attempt with uniform jitter.
    shard_retry_backoff_ms: float = 50.0

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ConfigError(
                f"num_shards must be >= 1, got {self.num_shards}"
            )
        if self.num_shards > 4096:
            # A fat-finger guard, not a scalability ceiling: every
            # shard is a live SQLite connection + thread pools, and a
            # five-digit count is always a typo on-device.
            raise ConfigError(
                f"num_shards must be <= 4096, got {self.num_shards}"
            )
        if (
            not self.router
            or any(c.isspace() or not c.isprintable() for c in self.router)
        ):
            # A kind is a manifest-persisted scheme NAME (custom
            # routers may use dots/dashes, e.g. "user-locality"), not
            # a Python identifier — just keep it greppable.
            raise ConfigError(
                f"router must be a non-empty name without whitespace, "
                f"got {self.router!r}"
            )
        if self.serve_scatter_threshold < 1:
            raise ConfigError("serve_scatter_threshold must be >= 1")
        if self.shard_timeout_s is not None and self.shard_timeout_s <= 0:
            raise ConfigError("shard_timeout_s must be > 0 when set")
        if self.shard_retries < 0:
            raise ConfigError("shard_retries must be >= 0")
        if self.shard_retry_backoff_ms < 0:
            raise ConfigError("shard_retry_backoff_ms must be >= 0")


#: Column names used by the library's own schema; attributes must not
#: collide with them.
_RESERVED_COLUMNS = frozenset(
    {
        "asset_id",
        "vector_id",
        "partition_id",
        "vector",
        "centroid",
        "rowid",
        "key",
        "value",
    }
)
