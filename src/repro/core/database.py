"""The MicroNN embedded vector database facade.

This is the library's public entry point, wiring together the storage
engine, the IVF index, the delta-store, the hybrid query optimizer and
the batch executor behind the small API the paper describes: an
embeddable library any application links to create its own local vector
index (§3).

Typical usage::

    from repro import MicroNN, MicroNNConfig, Eq

    config = MicroNNConfig(dim=128, metric="l2",
                           attributes={"location": "TEXT"})
    with MicroNN.open("photos.db", config) as db:
        db.upsert("img-001", vector, {"location": "Seattle"})
        db.build_index()
        hits = db.search(query_vector, k=10,
                         filters=Eq("location", "Seattle"))

Concurrency contract (paper §3.6): a single writer — upserts, deletes,
maintenance, rebuilds are serialized — with any number of concurrent
readers, each seeing a consistent snapshot (SQLite WAL).
"""

from __future__ import annotations

import dataclasses
import os
import threading
import time
from typing import Iterable, Mapping

import numpy as np

from repro.core.config import MicroNNConfig
from repro.core.errors import DatabaseClosedError, FilterError
from repro.core.types import (
    BatchSearchResult,
    BuildReport,
    IndexStats,
    MaintenanceAction,
    MaintenanceReport,
    PlanKind,
    SearchResult,
)
from repro.index.ivf import IVFBuilder
from repro.index.maintenance import IncrementalMaintainer, IndexMonitor
from repro.obs import (
    AuditSummary,
    Event,
    MetricsSnapshot,
    RecallAuditor,
    Recommendation,
    Tracer,
    WorkloadSnapshot,
    build_recommendations,
)
from repro.query.batch import BatchQueryExecutor
from repro.query.executor import QueryExecutor, _check_k
from repro.query.filters import Predicate, default_tokenizer
from repro.query.fts import TokenStats
from repro.query.planner import HybridQueryPlanner, PlanDecision
from repro.query.selectivity import (
    SelectivityEstimator,
    collect_statistics,
    load_statistics,
)
from repro.storage.engine import ScrubReport, StorageEngine, VectorRecord
from repro.storage.iomodel import IOSnapshot
from repro.storage.memory import MemorySnapshot


class MicroNN:
    """An on-device, disk-resident, updatable vector database."""

    def __init__(
        self,
        path: str | os.PathLike[str] | None,
        config: MicroNNConfig,
    ) -> None:
        self._config = config
        self._engine = StorageEngine(
            path, config, tokenizer=default_tokenizer
        )
        try:
            self._executor = QueryExecutor(self._engine, config)
            self._batch_executor = BatchQueryExecutor(self._engine, config)
            self._builder = IVFBuilder(self._engine, config)
            self._monitor = IndexMonitor(self._engine, config)
            self._maintainer = IncrementalMaintainer(self._engine, config)
            self._token_stats = TokenStats(self._engine)
            # Shadow recall auditor (repro.obs.audit): constructed only
            # when sampling is on, and attached to the engine so the
            # executor/scheduler funnel and the maintenance flush hook
            # can reach it. Its worker thread starts lazily on the
            # first sampled query.
            self._auditor = None
            if config.audit_sample_rate > 0 and config.telemetry_enabled:
                self._auditor = RecallAuditor(
                    self._executor,
                    self._engine.metrics,
                    self._engine.events,
                    sample_rate=config.audit_sample_rate,
                    max_per_min=config.audit_max_per_min,
                    recall_floor=config.audit_recall_floor,
                    window=config.audit_window,
                    seed=config.seed,
                )
                self._engine.auditor = self._auditor
        except BaseException:
            # A failure after the engine came up must not leak its
            # connections (or the tempdir of an ephemeral database).
            self._engine.close()
            raise
        self._estimator_lock = threading.Lock()
        self._estimator: SelectivityEstimator | None = None
        # The concurrent serving scheduler is built lazily on the first
        # async submission — a purely synchronous user never pays for
        # its threads. ``_closed`` (set under the same lock) keeps a
        # racing search_async from resurrecting a scheduler mid-close.
        self._scheduler_lock = threading.Lock()
        self._scheduler = None
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @classmethod
    def open(
        cls,
        path: str | os.PathLike[str] | None = None,
        config: MicroNNConfig | None = None,
        *,
        dim: int | None = None,
        **config_kwargs: object,
    ) -> "MicroNN":
        """Open (creating if needed) a MicroNN database.

        Either pass a full :class:`MicroNNConfig`, or pass ``dim`` plus
        any config keyword arguments for a one-liner. ``path=None``
        creates an ephemeral database in a temporary directory that is
        removed on close.
        """
        if config is None:
            if dim is None:
                raise FilterError(
                    "open() needs either a config or at least dim=..."
                )
            config = MicroNNConfig(
                dim=dim, **config_kwargs  # type: ignore[arg-type]
            )
        elif dim is not None or config_kwargs:
            raise FilterError(
                "pass either a config object or keyword arguments, not both"
            )
        return cls(path, config)

    def close(self) -> None:
        """Close all connections; the object is unusable afterwards.

        Deterministic teardown: the serving scheduler drains first
        (new submissions are rejected, queued-but-unadmitted queries
        are cancelled, in-flight futures complete), then both worker
        pools are joined before the storage connections drop — so
        repeated open/close cycles in one process never leak
        ``micronn-*`` threads, and the engine is closed even if a pool
        shutdown raises.
        """
        with self._scheduler_lock:
            self._closed = True
            scheduler, self._scheduler = self._scheduler, None
        try:
            if scheduler is not None:
                scheduler.close()
        finally:
            # The auditor drains before the executor closes: its
            # shadow scans run on the caller-visible engine, so they
            # must finish while the storage connections are alive.
            try:
                if self._auditor is not None:
                    self._auditor.close()
            finally:
                try:
                    self._executor.close()
                finally:
                    try:
                        self._batch_executor.close()
                    finally:
                        self._engine.close()

    def __enter__(self) -> "MicroNN":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def config(self) -> MicroNNConfig:
        return self._config

    @property
    def path(self) -> str:
        return self._engine.path

    @property
    def engine(self) -> StorageEngine:
        """The underlying storage engine (benchmarks introspect it)."""
        return self._engine

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def upsert(
        self,
        asset_id: str,
        vector: np.ndarray,
        attributes: Mapping[str, object] | None = None,
    ) -> None:
        """Insert or replace one asset (paper upsert semantics, §3.6)."""
        self.upsert_batch(
            [VectorRecord(asset_id, np.asarray(vector), attributes or {})]
        )

    def upsert_batch(
        self,
        records: Iterable[VectorRecord | tuple],
    ) -> int:
        """Insert or replace many assets in one write transaction.

        Accepts :class:`VectorRecord` objects or ``(asset_id, vector)``
        / ``(asset_id, vector, attributes)`` tuples. New vectors are
        staged in the delta-store and become visible to queries
        immediately (the delta is scanned by every search).
        """
        normalized = [_as_record(r) for r in records]
        written = self._engine.upsert_batch(normalized)
        self._invalidate_estimates()
        return written

    def delete(self, asset_id: str) -> bool:
        """Delete one asset; returns True if it existed."""
        return self.delete_batch([asset_id]) > 0

    def delete_batch(self, asset_ids: Iterable[str]) -> int:
        """Delete many assets; returns how many vectors were removed."""
        deleted = self._engine.delete_assets(asset_ids)
        if deleted:
            self._invalidate_estimates()
        return deleted

    # ------------------------------------------------------------------
    # Reads (point lookups)
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._engine.count_vectors()

    def __contains__(self, asset_id: str) -> bool:
        return self._engine.get_vector(asset_id) is not None

    def get_vector(self, asset_id: str) -> np.ndarray | None:
        return self._engine.get_vector(asset_id)

    def get_attributes(self, asset_id: str) -> dict[str, object] | None:
        return self._engine.get_attributes(asset_id)

    # ------------------------------------------------------------------
    # Index lifecycle
    # ------------------------------------------------------------------

    def build_index(self) -> BuildReport:
        """Full (re)clustering of the entire collection (Algorithm 1).

        Also refreshes the optimizer's column statistics — a build is a
        natural ANALYZE point, and the optimizer needs fresh histograms
        to pick hybrid plans well.
        """
        report = self._builder.build()
        self.refresh_statistics()
        return report

    def maintain(
        self, force: MaintenanceAction | None = None
    ) -> MaintenanceReport:
        """Run the index monitor's recommended maintenance (§3.6).

        Incremental flushes drain the delta-store into the nearest
        partitions; a full rebuild re-clusters everything once the
        average partition size has outgrown its threshold. ``force``
        overrides the monitor's recommendation.

        Every cycle also runs the amortized storage-hygiene pass: a
        budgeted partial scrub when ``scrub_budget_bytes`` is set, and
        (on the blobfile backend) blob-file compaction once dead bytes
        reach ``blob_compact_min_dead_ratio`` of the file.
        """
        report = self._maintain_index(force)
        self._background_hygiene()
        return report

    def _maintain_index(
        self, force: MaintenanceAction | None
    ) -> MaintenanceReport:
        action = force or self._monitor.recommend()
        if action is MaintenanceAction.NONE:
            return MaintenanceReport(
                action=MaintenanceAction.NONE,
                stats_before=self._monitor.stats(),
                stats_after=self._monitor.stats(),
            )
        if action is MaintenanceAction.INCREMENTAL_FLUSH:
            report = self._maintainer.flush()
            self._invalidate_estimates()
            return report
        start = time.perf_counter()
        stats_before = self._monitor.stats()
        rows_before = self._engine.accountant.rows_written
        self.build_index()
        return MaintenanceReport(
            action=MaintenanceAction.FULL_REBUILD,
            vectors_flushed=stats_before.delta_vectors,
            row_changes=self._engine.accountant.rows_written - rows_before,
            duration_s=time.perf_counter() - start,
            stats_before=stats_before,
            stats_after=self._monitor.stats(),
        )

    def _background_hygiene(self) -> None:
        """Amortized hygiene piggy-backed on every maintenance cycle.

        Both halves are budgeted so a cycle never stalls on a full
        cold read of the index: the partial scrub verifies at most
        ``scrub_budget_bytes`` of stored payloads (round-robin, with a
        persisted cursor), and compaction only triggers once the blob
        file's dead-byte ratio crosses the configured threshold — and
        is skipped while the live set exceeds
        ``blob_compact_budget_bytes`` (when set), bounding the copy
        work of one cycle.
        """
        cfg = self._config
        if cfg.scrub_budget_bytes is not None:
            self._engine.scrub(budget_bytes=cfg.scrub_budget_bytes)
        dead, total = self._engine.blob_dead_bytes()
        if total <= 0 or dead <= 0:
            return
        if dead / total < cfg.blob_compact_min_dead_ratio:
            return
        live = total - dead
        if (
            cfg.blob_compact_budget_bytes is not None
            and live > cfg.blob_compact_budget_bytes
        ):
            return
        self._engine.compact_storage()

    def index_stats(self) -> IndexStats:
        stats = self._monitor.stats()
        if self._auditor is None:
            return stats
        audit = self._auditor.summary()
        return dataclasses.replace(
            stats,
            audited_queries=audit.audited_queries,
            audit_recall_mean=audit.mean_recall,
            recall_dips=audit.recall_dips,
        )

    def recommended_action(self) -> MaintenanceAction:
        return self._monitor.recommend()

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def search(
        self,
        query: np.ndarray,
        k: int = 10,
        nprobe: int | None = None,
        filters: Predicate | None = None,
        exact: bool = False,
        plan: PlanKind | None = None,
        trace: bool = False,
    ) -> SearchResult:
        """Nearest-neighbour search (Algorithm 2 + hybrid plans, §3.3-3.5).

        Parameters
        ----------
        query:
            Query vector of the configured dimensionality.
        k:
            Number of neighbours to return.
        nprobe:
            IVF partitions to probe (defaults to the config value); the
            latency/recall knob of the paper.
        filters:
            Optional attribute predicate. Without ``plan``, the hybrid
            optimizer picks pre- vs post-filtering from selectivity
            estimates (§3.5.1).
        exact:
            Force exhaustive exact KNN (100% recall).
        plan:
            Force :data:`PlanKind.PRE_FILTER` or
            :data:`PlanKind.POST_FILTER` for a filtered query,
            bypassing the optimizer.
        trace:
            Record a per-query span trace: the returned
            :attr:`SearchResult.trace` holds the span forest, and
            ``result.trace.to_chrome_trace()`` renders Chrome-trace
            JSON loadable in Perfetto / ``chrome://tracing``.
        """
        nprobe = nprobe or self._config.default_nprobe
        tracer = Tracer() if trace else None
        if exact:
            return self._executor.search_exact(
                query, k, predicate=filters, tracer=tracer
            )
        if filters is None:
            return self._executor.search_ann(query, k, nprobe, tracer=tracer)
        return self._search_hybrid(query, k, nprobe, filters, plan, tracer)

    def _search_hybrid(
        self,
        query: np.ndarray,
        k: int,
        nprobe: int,
        filters: Predicate,
        plan: PlanKind | None,
        tracer: Tracer | None = None,
    ) -> SearchResult:
        decision: PlanDecision | None = None
        if plan is None:
            decision = self.plan_for(filters, nprobe)
            plan = decision.kind
        if plan is PlanKind.PRE_FILTER:
            result = self._executor.search_prefilter(
                query, k, filters, tracer=tracer
            )
        elif plan is PlanKind.POST_FILTER:
            result = self._executor.search_postfilter(
                query, k, nprobe, filters, tracer=tracer
            )
        else:
            raise FilterError(
                f"plan must be PRE_FILTER or POST_FILTER, got {plan}"
            )
        if decision is not None:
            stats = dataclasses.replace(
                result.stats,
                estimated_selectivity=decision.estimated_selectivity,
                ivf_selectivity=decision.ivf_selectivity,
            )
            result = SearchResult(
                neighbors=result.neighbors,
                stats=stats,
                trace=result.trace,
            )
        return result

    def plan_for(
        self, filters: Predicate, nprobe: int | None = None
    ) -> PlanDecision:
        """Expose the optimizer's decision without running the query."""
        nprobe = nprobe or self._config.default_nprobe
        planner = HybridQueryPlanner(
            self._get_estimator(),
            total_vectors=len(self),
            target_partition_size=self._current_partition_target(),
        )
        return planner.choose(filters, nprobe)

    def search_batch(
        self,
        queries: np.ndarray,
        k: int = 10,
        nprobe: int | None = None,
    ) -> BatchSearchResult:
        """Batch ANN with multi-query optimization (§3.4)."""
        nprobe = nprobe or self._config.default_nprobe
        return self._batch_executor.search_batch(queries, k, nprobe)

    # ------------------------------------------------------------------
    # Concurrent serving (repro.serve)
    # ------------------------------------------------------------------

    def _get_scheduler(self):
        with self._scheduler_lock:
            if self._scheduler is None:
                if self._closed or not self._engine.is_open:
                    raise DatabaseClosedError("database is closed")
                from repro.serve.scheduler import QueryScheduler

                self._scheduler = QueryScheduler(
                    self._engine, self._executor, self._config
                )
            return self._scheduler

    def search_async(
        self,
        query: np.ndarray,
        k: int = 10,
        nprobe: int | None = None,
        filters: Predicate | None = None,
        exact: bool = False,
        plan: PlanKind | None = None,
    ):
        """Schedule a search; returns a :class:`concurrent.futures.Future`.

        Same parameters and plan selection as :meth:`search`, and the
        resolved result is bit-identical to what the serial call would
        return — the scheduler reuses the executor's kernels and
        merges, it only changes *when* partitions are read. (The one
        carve-out is ``adaptive_nprobe_margin``: its pruning depends
        on scoring order on every concurrent path, so adaptive runs
        are recall-equivalent within the margin rather than
        bit-identical.) What the async path adds: many in-flight
        queries at once, cross-query read coalescing on overlapping
        probe sets (see ``QueryStats.io_shared_hits``), and bounded
        admission (``max_inflight_queries`` + scratch-memory
        back-pressure, waits surfaced as
        ``QueryStats.queue_wait_ms``).

        Invalid inputs (bad dimension, bad k) raise here synchronously;
        execution errors surface through the future.
        """
        nprobe = nprobe or self._config.default_nprobe
        # Input validation stays synchronous on every plan (call plans
        # would otherwise defer the error to the future); the
        # canonicalized array is what every downstream path consumes,
        # so validation happens exactly once.
        query = self._executor.as_query(query)
        _check_k(k)
        scheduler = self._get_scheduler()
        if exact:
            return scheduler.submit_call(
                lambda: self._executor.search_exact(
                    query, k, predicate=filters
                )
            )
        if filters is None:
            return scheduler.submit(query, k, nprobe)
        if plan is not None and plan not in (
            PlanKind.PRE_FILTER,
            PlanKind.POST_FILTER,
        ):
            raise FilterError(
                f"plan must be PRE_FILTER or POST_FILTER, got {plan}"
            )

        def setup():
            # Runs on the scheduler's compute pool at admission: the
            # optimizer's selectivity estimate and (for post-filtering)
            # the predicate's attribute-table scan are real storage
            # work that must neither block the submitting thread nor
            # escape admission control.
            decision: PlanDecision | None = None
            chosen = plan
            if chosen is None:
                decision = self.plan_for(filters, nprobe)
                chosen = decision.kind
            extra = (
                {
                    "estimated_selectivity": (
                        decision.estimated_selectivity
                    ),
                    "ivf_selectivity": decision.ivf_selectivity,
                }
                if decision is not None
                else None
            )
            if chosen is PlanKind.PRE_FILTER:
                return (
                    "call",
                    lambda: self._executor.search_prefilter(
                        query, k, filters
                    ),
                    extra,
                )
            return (
                "scan",
                self._executor.qualifying_ids_for(filters),
                extra,
            )

        return scheduler.submit(
            query, k, nprobe, plan=PlanKind.POST_FILTER, setup=setup
        )

    async def search_asyncio(
        self,
        query: np.ndarray,
        k: int = 10,
        nprobe: int | None = None,
        filters: Predicate | None = None,
        exact: bool = False,
        plan: PlanKind | None = None,
    ) -> SearchResult:
        """Awaitable :meth:`search` for asyncio applications.

        Bridges the scheduler's future onto the running event loop, so
        ``await db.search_asyncio(q)`` composes with ``asyncio.gather``
        for fan-out without blocking the loop.
        """
        import asyncio

        return await asyncio.wrap_future(
            self.search_async(
                query,
                k=k,
                nprobe=nprobe,
                filters=filters,
                exact=exact,
                plan=plan,
            )
        )

    def serve_session(self):
        """Open a :class:`repro.serve.Session` over this database."""
        from repro.serve.session import Session

        self._get_scheduler()
        return Session(self)

    # ------------------------------------------------------------------
    # Statistics / optimizer support
    # ------------------------------------------------------------------

    def refresh_statistics(self) -> None:
        """Re-run the ANALYZE-style per-column statistics collection."""
        if self._config.attributes:
            collect_statistics(self._engine, self._config)
        self._invalidate_estimates()

    def _get_estimator(self) -> SelectivityEstimator:
        with self._estimator_lock:
            if self._estimator is None:
                stats = load_statistics(self._engine)
                self._estimator = SelectivityEstimator(
                    stats,
                    token_stats=self._token_stats,
                    total_rows=self._engine.count_attribute_rows()
                    or len(self),
                )
            return self._estimator

    def _invalidate_estimates(self) -> None:
        with self._estimator_lock:
            self._estimator = None
        self._token_stats.invalidate()

    def _current_partition_target(self) -> int:
        """The p of F̂_IVF: actual average partition size when indexed."""
        stats = self._monitor.stats()
        if stats.num_partitions > 0 and stats.avg_partition_size > 0:
            return max(1, round(stats.avg_partition_size))
        return self._config.target_cluster_size

    # ------------------------------------------------------------------
    # Cache scenarios and telemetry (§4.1.4)
    # ------------------------------------------------------------------

    def purge_caches(self) -> None:
        """Cold-start scenario: drop all cached pages and blocks."""
        self._engine.purge_caches()

    def compact(self) -> int:
        """Reclaim disk space left by deletes and partition moves.

        Returns the total number of bytes reclaimed. On-device storage
        is shared and flash-constrained (§2.1), so periodic compaction
        after heavy delete traffic matters. On the blobfile backend
        this compacts the append-only blob file first (copying live
        records into a fresh generation), then vacuums the SQLite
        file; on the other backends only the vacuum applies.
        """
        return self._engine.compact_storage() + self._engine.vacuum()

    def check_integrity(self) -> list[str]:
        """Verify storage health; returns a list of problems (empty =
        healthy). Covers SQLite page integrity plus MicroNN invariants
        (orphaned partition assignments, impossible centroid counts).
        """
        return self._engine.integrity_check()

    def verify(self, budget_bytes: int | None = None) -> ScrubReport:
        """Checksum-verify partition blobs and the quantizer.

        Read-only scrub: recomputes the CRC32 of each partition's
        vectors (and codes, when quantized) against the stored
        checksums. Corrupt partitions are quarantined — queries keep
        answering without them and flag themselves ``degraded`` — and
        the returned :class:`ScrubReport` says exactly what is wrong.

        ``budget_bytes`` limits one call to roughly that many stored
        payload bytes, resuming round-robin where the previous
        budgeted call stopped (the amortized pass :meth:`maintain`
        runs when ``scrub_budget_bytes`` is configured).
        """
        return self._engine.scrub(budget_bytes=budget_bytes)

    def repair(self) -> ScrubReport:
        """Scrub, then fix what can be fixed.

        Corrupt code blobs are rebuilt bit-identically from the intact
        float vectors; a corrupt quantizer payload is dropped (scans
        fall back to full precision until the next build retrains it);
        partitions whose *float* blob is corrupt are unrecoverable and
        dropped. Afterwards the quarantine list is cleared and caches
        purged, so search results are bit-identical to an uncorrupted
        database minus any dropped partitions.
        """
        return self._engine.repair()

    @property
    def quarantined_partitions(self) -> tuple[int, ...]:
        """Partitions currently served empty due to checksum failures."""
        return self._engine.quarantined_partitions

    def explain(
        self,
        filters: Predicate,
        nprobe: int | None = None,
        k: int = 10,
    ) -> str:
        """Human-readable account of the optimizer's plan choice.

        The EXPLAIN analog for hybrid queries: shows both candidate
        plans, the selectivity estimates, the F̂_IVF threshold, and
        which side won — without executing anything.
        """
        nprobe = nprobe or self._config.default_nprobe
        decision = self.plan_for(filters, nprobe)
        total = len(self)
        lines = [
            f"hybrid query plan (k={k}, nprobe={nprobe}, |R|={total})",
            f"  partition scan:   {self.scan_mode_description(k)}",
            f"  scan pipeline:    {self.pipeline_description()}",
            f"  adaptive nprobe:  {self.adaptive_nprobe_description()}",
            f"  serving:          {self.serving_description()}",
            (
                "  attribute filter: estimated selectivity "
                f"{decision.estimated_selectivity:.6f} "
                f"(~{decision.estimated_cardinality} rows)"
            ),
            (
                "  IVF probe:        selectivity threshold F_IVF = "
                f"{decision.ivf_selectivity:.6f}"
            ),
        ]
        quarantined = self._engine.quarantined_partitions
        if quarantined:
            shown = ", ".join(str(p) for p in quarantined[:8])
            if len(quarantined) > 8:
                shown += ", ..."
            lines.append(
                f"  DEGRADED:         {len(quarantined)} partition(s) "
                f"quarantined by checksum failures [{shown}] — served "
                "empty until repair()"
            )
        if decision.kind is PlanKind.PRE_FILTER:
            lines.append(
                "  chosen plan: PRE-FILTER — the filter narrows the "
                "search more than the index; evaluate it first, then "
                "brute-force the qualifying vectors (100% recall)."
            )
        else:
            lines.append(
                "  chosen plan: POST-FILTER — the index narrows the "
                "search more than the filter; run the ANN scan and "
                "apply the filter during partition retrieval."
            )
        return "\n".join(lines)

    def scan_mode(self) -> str:
        """How ANN scans read partitions: "float32", "sq8" or "pq".

        A quantized mode requires both the config flag and a trained
        quantizer; a freshly opened (or never-built) sq8/pq database
        reports "float32" because its scans fall back to full
        precision until the first build trains the quantizer.
        """
        if (
            self._config.uses_quantization
            and self._engine.load_quantizer() is not None
        ):
            return self._config.quantization
        return "float32"

    def pipeline_description(self) -> str:
        """One-line account of the partition-scan pipeline settings.

        The per-query observability lives in :class:`QueryStats`:
        ``io_time_ms``/``compute_time_ms`` are summed thread times, so
        their total exceeding the query latency is the direct signature
        of I/O–compute overlap, and ``scan_pipelined`` says whether the
        pipeline actually engaged.
        """
        depth = self._config.pipeline_depth
        if depth < 1:
            return "off — serial load-then-score scans (pipeline_depth=0)"
        return (
            f"I/O–compute overlap on cache-cold scans (depth={depth}, "
            f"{self._config.io_prefetch_threads} I/O thread(s), up to "
            f"{self._config.device.worker_threads} compute workers)"
        )

    def adaptive_nprobe_description(self) -> str:
        """One-line account of the adaptive early-termination knob."""
        margin = self._config.adaptive_nprobe_margin
        if margin is None:
            return (
                "off — every probe-set partition is scanned "
                "(adaptive_nprobe_margin=None)"
            )
        return (
            f"margin {margin:g} — stop admitting partitions once the "
            f"centroid distance exceeds the k-th candidate by "
            f"{margin:g}x (QueryStats.partitions_skipped counts them)"
        )

    def serving_description(self) -> str:
        """One-line account of the concurrent serving configuration."""
        return (
            f"up to {self._config.max_inflight_queries} in-flight "
            f"queries, {self._config.resolved_serve_io_threads} shared "
            "I/O thread(s), cross-query read coalescing on overlapping "
            "probe sets (search_async / serve_session)"
        )

    def scan_mode_description(self, k: int = 10) -> str:
        """One-line human-readable account of the active scan mode."""
        mode = self.scan_mode()
        factor = self._config.rerank_factor
        if mode == "sq8":
            return (
                "sq8 — int8 codes (1 byte/dim, ~4x less partition I/O), "
                f"exact rerank of top {factor}*k={factor * k} candidates"
            )
        if mode == "pq":
            m = self._config.pq_num_subvectors
            ratio = 4.0 * self._config.dim / m
            return (
                f"pq — ADC lookup-table scan over {m}x256 codebooks "
                f"({m} bytes/vector, ~{ratio:.0f}x less partition I/O), "
                f"exact rerank of top {factor}*k={factor * k} candidates"
            )
        if self._config.uses_quantization:
            return (
                f"float32 — {self._config.quantization} configured but "
                "no quantizer trained yet (run build_index() or "
                "maintain())"
            )
        return "float32 — full-precision partition scans"

    def warm_cache(
        self, queries: np.ndarray, k: int = 10, nprobe: int | None = None
    ) -> None:
        """Warm-cache scenario: run warm-up queries before measuring."""
        q = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        for row in q:
            self.search(row, k=k, nprobe=nprobe)

    def memory(self) -> MemorySnapshot:
        """Tracked resident memory (the paper's RSS analog)."""
        return self._engine.tracker.snapshot()

    def io(self) -> IOSnapshot:
        """Cumulative I/O counters (bytes read, rows written, cache)."""
        return self._engine.accountant.snapshot()

    def metrics(self) -> MetricsSnapshot:
        """Immutable snapshot of the telemetry registry.

        Export it with :meth:`MetricsSnapshot.to_prometheus` (text
        exposition an agent can scrape) or
        :meth:`MetricsSnapshot.to_json`. Empty (but valid) when
        ``telemetry_enabled=False``.
        """
        return self._engine.metrics.snapshot()

    def events(
        self, limit: int | None = None, kind: str | None = None
    ) -> tuple[Event, ...]:
        """The newest structured events, oldest-first.

        ``kind`` filters to one event kind (see
        :data:`repro.obs.EVENT_KINDS`); ``limit`` caps how many of the
        newest matching events are returned.
        """
        return self._engine.events.tail(limit=limit, kind=kind)

    def audit_summary(self) -> AuditSummary | None:
        """Aggregate state of the shadow recall auditor.

        ``None`` when auditing is off (``audit_sample_rate=0`` or
        telemetry disabled). Pending shadow audits are drained first so
        the summary reflects every query sampled so far.
        """
        if self._auditor is None:
            return None
        self._auditor.flush()
        return self._auditor.summary()

    def workload(self) -> WorkloadSnapshot:
        """Bounded per-partition heatmap + query workload sketch."""
        return self._engine.workload.snapshot()

    def advise(self) -> tuple[Recommendation, ...]:
        """Structured tuning recommendations from observed behaviour.

        Combines the shadow auditor's measured recall, the partition
        workload heatmap, and index stats into concrete knob
        suggestions (``default_nprobe``, ``rerank_factor``,
        ``adaptive_nprobe_margin``, cache sizing, quantization scheme),
        each carrying the evidence it was derived from.
        """
        audit = self.audit_summary()
        return build_recommendations(
            self._config,
            self.index_stats(),
            self.metrics(),
            audit,
            self.workload(),
        )


def _as_record(record: VectorRecord | tuple) -> VectorRecord:
    if isinstance(record, VectorRecord):
        return record
    if isinstance(record, tuple):
        if len(record) == 2:
            asset_id, vector = record
            return VectorRecord(str(asset_id), np.asarray(vector), {})
        if len(record) == 3:
            asset_id, vector, attributes = record
            return VectorRecord(
                str(asset_id), np.asarray(vector), dict(attributes or {})
            )
    raise FilterError(
        "records must be VectorRecord or (asset_id, vector[, attributes])"
    )
