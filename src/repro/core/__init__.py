"""Core of the MicroNN reproduction: configuration, types, facade."""

from repro.core.config import (
    DELTA_PARTITION_ID,
    DeviceProfile,
    IOCostModel,
    MicroNNConfig,
)
from repro.core.database import MicroNN
from repro.core.errors import (
    ConfigError,
    DatabaseClosedError,
    DimensionMismatchError,
    FilterError,
    MicroNNError,
    StorageError,
    UnknownAttributeError,
)
from repro.core.types import (
    BatchSearchResult,
    BuildReport,
    IndexStats,
    MaintenanceAction,
    MaintenanceReport,
    Neighbor,
    PlanKind,
    QueryStats,
    SearchResult,
)

__all__ = [
    "MicroNN",
    "MicroNNConfig",
    "DeviceProfile",
    "IOCostModel",
    "DELTA_PARTITION_ID",
    "MicroNNError",
    "ConfigError",
    "FilterError",
    "StorageError",
    "DatabaseClosedError",
    "DimensionMismatchError",
    "UnknownAttributeError",
    "Neighbor",
    "SearchResult",
    "BatchSearchResult",
    "QueryStats",
    "PlanKind",
    "IndexStats",
    "BuildReport",
    "MaintenanceAction",
    "MaintenanceReport",
]
