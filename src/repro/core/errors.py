"""Exception hierarchy for the MicroNN library.

All exceptions raised by the public API derive from :class:`MicroNNError`
so callers can catch a single base class. Errors caused by user input
(bad dimensions, unknown attributes, malformed filters) are distinguished
from internal/storage failures.
"""

from __future__ import annotations


class MicroNNError(Exception):
    """Base class for all MicroNN errors."""


class ConfigError(MicroNNError):
    """Raised when a :class:`~repro.core.config.MicroNNConfig` is invalid."""


class DimensionMismatchError(MicroNNError):
    """Raised when a vector does not match the configured dimensionality."""

    def __init__(self, expected: int, actual: int) -> None:
        super().__init__(
            f"vector has dimension {actual}, expected {expected}"
        )
        self.expected = expected
        self.actual = actual


class UnknownAttributeError(MicroNNError):
    """Raised when a filter or upsert references an undeclared attribute."""

    def __init__(self, name: str, known: tuple[str, ...] = ()) -> None:
        detail = f"unknown attribute {name!r}"
        if known:
            detail += f"; declared attributes: {', '.join(sorted(known))}"
        super().__init__(detail)
        self.name = name


class FilterError(MicroNNError):
    """Raised when a predicate expression is malformed."""


class StorageError(MicroNNError):
    """Raised when the underlying relational storage fails."""


class DatabaseClosedError(StorageError):
    """Raised when an operation is attempted on a closed database."""


class CorruptPartitionError(StorageError):
    """Raised when a stored partition blob fails its checksum.

    Carries the offending ``partition_id`` so the engine can
    quarantine exactly that partition and keep serving degraded
    results from the rest of the index.
    """

    def __init__(self, partition_id: int, detail: str = "") -> None:
        message = f"partition {partition_id} failed integrity check"
        if detail:
            message += f": {detail}"
        super().__init__(message)
        self.partition_id = partition_id


class WriteConflictError(StorageError):
    """Raised when the single-writer lock cannot be acquired."""


class IndexNotBuiltError(MicroNNError):
    """Raised when an index-only operation runs before any index exists.

    Searches never raise this: before the first build every vector lives
    in the delta-store, which is always scanned, so queries degrade to
    exact search rather than failing.
    """


class EmptyDatabaseError(MicroNNError):
    """Raised when an operation requires at least one stored vector."""


class SimulatedCrash(Exception):
    """Raised by the fault-injecting test backend at a scripted point.

    Deliberately NOT a :class:`MicroNNError`: production code must
    never catch it by accident (a real crash cannot be caught), so it
    escapes every ``except MicroNNError`` / ``except StorageError``
    handler and unwinds the process exactly like a kill would.
    """
