"""Exact nearest-neighbour ground truth for recall measurement (§4.1.3).

Ground truth is computed by brute force with the same distance kernels
the library uses, chunked over queries so memory stays bounded even for
the largest bench datasets. Results are plain id lists so recall can be
computed against any system (MicroNN, the InMemory baseline, or an
external comparator).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.query.distance import pairwise_distances


def compute_ground_truth(
    train_ids: Sequence[str],
    train: np.ndarray,
    queries: np.ndarray,
    k: int,
    metric: str,
    chunk_size: int = 256,
) -> list[list[str]]:
    """Exact top-K ids per query, closest first.

    Ties are broken on asset id, matching the library's deterministic
    ordering, so recall comparisons are exact rather than fuzzy.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    q = np.atleast_2d(np.asarray(queries, dtype=np.float32))
    ids = list(train_ids)
    n = len(ids)
    if n == 0:
        return [[] for _ in range(q.shape[0])]
    take = min(k, n)
    out: list[list[str]] = []
    for start in range(0, q.shape[0], chunk_size):
        block = q[start : start + chunk_size]
        dist = pairwise_distances(block, train, metric)
        part = np.argpartition(dist, take - 1, axis=1)[:, :take]
        for row in range(block.shape[0]):
            cand = sorted(
                ((float(dist[row, i]), ids[i]) for i in part[row]),
                key=lambda p: (p[0], p[1]),
            )
            out.append([aid for _, aid in cand])
    return out


def ground_truth_indices(
    train: np.ndarray,
    queries: np.ndarray,
    k: int,
    metric: str,
    chunk_size: int = 256,
) -> np.ndarray:
    """Exact top-K *row indices* per query (shape: num_queries × k)."""
    q = np.atleast_2d(np.asarray(queries, dtype=np.float32))
    n = train.shape[0]
    take = min(k, n)
    result = np.empty((q.shape[0], take), dtype=np.int64)
    for start in range(0, q.shape[0], chunk_size):
        block = q[start : start + chunk_size]
        dist = pairwise_distances(block, train, metric)
        part = np.argpartition(dist, take - 1, axis=1)[:, :take]
        for row in range(block.shape[0]):
            order = np.argsort(dist[row, part[row]], kind="stable")
            result[start + row] = part[row][order]
    return result
