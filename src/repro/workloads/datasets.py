"""Synthetic analogs of the paper's benchmark datasets (Table 2).

The paper evaluates on seven collections (MNIST, NYTimes, SIFT, GLOVE,
GIST, DEEPImage and the internal ``InternalA``). Shipping those corpora
is impossible offline, so each dataset is replaced by a *seeded
Gaussian-mixture analog* that preserves what the experiments actually
exercise:

- the **dimensionality** and **metric** (Table 2 columns),
- a clusterable structure (mixture components) so IVF partition
  pruning behaves like it does on real embeddings,
- per-dataset size *ratios* (scaled down so benches complete in
  minutes; ``MICRONN_BENCH_SCALE`` raises the scale).

Every generator is deterministic in ``(name, size, seed)``, so ground
truth can be cached and experiments are reproducible.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.core.errors import ConfigError


@dataclass(frozen=True)
class DatasetSpec:
    """Static description of one benchmark dataset (Table 2 row)."""

    name: str
    dim: int
    metric: str
    full_vectors: int
    full_queries: int
    #: Number of mixture components in the synthetic analog; chosen so
    #: cluster structure is neither trivial nor absent.
    components: int

    def scaled_vectors(self, scale: float, cap: int) -> int:
        return max(1000, min(int(self.full_vectors * scale), cap))

    def scaled_queries(self, scale: float, cap: int) -> int:
        return max(50, min(int(self.full_queries * scale), cap))


#: Table 2, in paper order.
DATASET_SPECS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in (
        DatasetSpec("mnist", 784, "l2", 60_000, 10_000, components=10),
        DatasetSpec("nytimes", 256, "cosine", 290_000, 10_000, components=48),
        DatasetSpec("sift", 128, "l2", 1_000_000, 10_000, components=64),
        DatasetSpec("glove", 200, "l2", 1_183_514, 10_000, components=64),
        DatasetSpec("gist", 960, "l2", 1_000_000, 1_000, components=32),
        DatasetSpec(
            "deepimage", 96, "cosine", 10_000_000, 10_000, components=96
        ),
        DatasetSpec("internala", 512, "cosine", 150_000, 1_000, components=32),
    )
}

#: Default downscaling applied by the benchmark suite.
DEFAULT_SCALE = 0.02
DEFAULT_VECTOR_CAP = 20_000
DEFAULT_QUERY_CAP = 100


@dataclass(frozen=True)
class Dataset:
    """A materialized dataset: train vectors plus query vectors."""

    spec: DatasetSpec
    train_ids: tuple[str, ...]
    train: np.ndarray
    queries: np.ndarray
    seed: int

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def dim(self) -> int:
        return self.spec.dim

    @property
    def metric(self) -> str:
        return self.spec.metric

    def __len__(self) -> int:
        return self.train.shape[0]


def bench_scale() -> float:
    """Benchmark scale factor (``MICRONN_BENCH_SCALE`` multiplies it)."""
    raw = os.environ.get("MICRONN_BENCH_SCALE", "1.0")
    try:
        multiplier = float(raw)
    except ValueError as exc:
        raise ConfigError(
            f"MICRONN_BENCH_SCALE must be a float, got {raw!r}"
        ) from exc
    return DEFAULT_SCALE * multiplier


def load_dataset(
    name: str,
    num_vectors: int | None = None,
    num_queries: int | None = None,
    seed: int = 7,
) -> Dataset:
    """Materialize a dataset analog at the requested (or default) size."""
    spec = DATASET_SPECS.get(name.lower())
    if spec is None:
        raise ConfigError(
            f"unknown dataset {name!r}; available: {sorted(DATASET_SPECS)}"
        )
    scale = bench_scale()
    cap_mult = max(scale / DEFAULT_SCALE, 1.0)
    if num_vectors is None:
        num_vectors = spec.scaled_vectors(
            scale, int(DEFAULT_VECTOR_CAP * cap_mult)
        )
    if num_queries is None:
        num_queries = spec.scaled_queries(
            scale, int(DEFAULT_QUERY_CAP * cap_mult)
        )
    train, queries = _gaussian_mixture(
        dim=spec.dim,
        components=spec.components,
        num_vectors=num_vectors,
        num_queries=num_queries,
        seed=seed ^ _stable_hash(spec.name),
    )
    ids = tuple(f"{spec.name}-{i:07d}" for i in range(num_vectors))
    return Dataset(
        spec=spec, train_ids=ids, train=train, queries=queries, seed=seed
    )


def _gaussian_mixture(
    dim: int,
    components: int,
    num_vectors: int,
    num_queries: int,
    seed: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Clusterable synthetic embeddings.

    Component means are spread so clusters overlap moderately (real
    embedding spaces are neither perfectly separated nor structureless);
    per-component scales vary to create the partition-size imbalance
    the balanced clustering is meant to tame. Queries are drawn from
    the same mixture — the in-distribution query model of all the
    public ANN benchmarks.
    """
    rng = np.random.default_rng(seed)
    means = rng.normal(0.0, 1.0, size=(components, dim)).astype(np.float32)
    scales = rng.uniform(0.15, 0.45, size=components).astype(np.float32)
    # Zipf-ish component weights: some clusters are much denser.
    weights = 1.0 / np.arange(1, components + 1) ** 0.7
    weights /= weights.sum()

    def draw(count: int) -> np.ndarray:
        labels = rng.choice(components, size=count, p=weights)
        noise = rng.normal(0.0, 1.0, size=(count, dim)).astype(np.float32)
        return means[labels] + noise * scales[labels, None]

    return draw(num_vectors), draw(num_queries)


def _stable_hash(text: str) -> int:
    """Deterministic small hash (Python's hash() is salted per run)."""
    value = 0
    for ch in text:
        value = (value * 131 + ord(ch)) % (2**31)
    return value


def table2_rows() -> list[dict[str, object]]:
    """The rows of Table 2, paper values plus this repo's bench sizes."""
    scale = bench_scale()
    cap_mult = max(scale / DEFAULT_SCALE, 1.0)
    rows = []
    for spec in DATASET_SPECS.values():
        rows.append(
            {
                "dataset": spec.name,
                "dimension": spec.dim,
                "paper_vectors": spec.full_vectors,
                "paper_queries": spec.full_queries,
                "bench_vectors": spec.scaled_vectors(
                    scale, int(DEFAULT_VECTOR_CAP * cap_mult)
                ),
                "bench_queries": spec.scaled_queries(
                    scale, int(DEFAULT_QUERY_CAP * cap_mult)
                ),
                "metric": spec.metric,
            }
        )
    return rows
