"""Workload substrate: datasets, ground truth, metrics, filtered search."""

from repro.workloads.datasets import (
    DATASET_SPECS,
    Dataset,
    DatasetSpec,
    bench_scale,
    load_dataset,
    table2_rows,
)
from repro.workloads.filtered import (
    FilteredQuery,
    FilteredWorkload,
    generate_filtered_workload,
)
from repro.workloads.groundtruth import (
    compute_ground_truth,
    ground_truth_indices,
)
from repro.workloads.metrics import (
    LatencySummary,
    mean_recall_at_k,
    recall_at_k,
    summarize_latencies,
)

__all__ = [
    "Dataset",
    "DatasetSpec",
    "DATASET_SPECS",
    "load_dataset",
    "bench_scale",
    "table2_rows",
    "FilteredQuery",
    "FilteredWorkload",
    "generate_filtered_workload",
    "compute_ground_truth",
    "ground_truth_indices",
    "recall_at_k",
    "mean_recall_at_k",
    "LatencySummary",
    "summarize_latencies",
]
