"""Filtered-search workload: the Big-ANN Filtered Search analog (§4.3.1).

The paper's hybrid-optimizer experiment uses 10M CLIP embeddings of
Flickr images, each tagged with a bag of tags; queries carry an
embedding plus a conjunctive tag filter, and the figure bins queries by
the *true* selectivity factor of their tag bag (one decade per bin, 10
queries per bin).

This module builds the same structure synthetically:

- every asset gets a Zipf-distributed bag of tags, encoded as one
  whitespace-separated string (exactly how the paper stores them: a
  string column with an inverted index over its tokens);
- query tag bags are sampled to cover the full selectivity spectrum —
  frequent single tags give low-selectivity (large) result sets,
  conjunctions of rare tags give high-selectivity (tiny) ones;
- every query's true selectivity is computed against the generated
  corpus, then queries are binned per decade.

Zipf frequencies are what makes the spectrum wide: tag ranks span
several orders of magnitude of document frequency, and conjunctions
multiply them down further, matching the 1e-6…1e-1 range of Figure 7.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class FilteredQuery:
    """One hybrid query: embedding + conjunctive tag filter."""

    vector: np.ndarray
    tags: tuple[str, ...]
    #: Exact selectivity factor of the tag conjunction in the corpus.
    true_selectivity: float
    #: Asset ids qualifying under the filter (ground-truth domain).
    qualifying_ids: tuple[str, ...]

    @property
    def match_query(self) -> str:
        """The MATCH string for the tags attribute."""
        return " ".join(self.tags)


@dataclass(frozen=True)
class FilteredWorkload:
    """Corpus plus selectivity-binned queries."""

    asset_ids: tuple[str, ...]
    vectors: np.ndarray
    tag_strings: tuple[str, ...]
    #: decade exponent -> queries whose selectivity ∈ [10^e, 10^(e+1)).
    bins: dict[int, tuple[FilteredQuery, ...]]
    metric: str = "cosine"

    @property
    def num_assets(self) -> int:
        return len(self.asset_ids)

    def all_queries(self) -> list[FilteredQuery]:
        out: list[FilteredQuery] = []
        for exponent in sorted(self.bins):
            out.extend(self.bins[exponent])
        return out


def generate_filtered_workload(
    num_assets: int = 20_000,
    dim: int = 64,
    vocabulary: int = 500,
    tags_per_asset: int = 6,
    zipf_exponent: float = 1.2,
    queries_per_bin: int = 10,
    seed: int = 11,
    metric: str = "cosine",
) -> FilteredWorkload:
    """Build the corpus and the per-decade query bins."""
    rng = np.random.default_rng(seed)

    # --- corpus ------------------------------------------------------
    vectors = rng.normal(0.0, 1.0, size=(num_assets, dim)).astype(
        np.float32
    )
    tag_probs = 1.0 / np.arange(1, vocabulary + 1) ** zipf_exponent
    tag_probs /= tag_probs.sum()
    tag_names = [f"tag{r:04d}" for r in range(vocabulary)]

    tag_to_assets: dict[str, set[str]] = {t: set() for t in tag_names}
    asset_ids: list[str] = []
    tag_strings: list[str] = []
    for i in range(num_assets):
        asset_id = f"asset-{i:07d}"
        asset_ids.append(asset_id)
        chosen = rng.choice(
            vocabulary, size=tags_per_asset, replace=False, p=tag_probs
        )
        tags = [tag_names[int(c)] for c in sorted(chosen)]
        tag_strings.append(" ".join(tags))
        for tag in tags:
            tag_to_assets[tag].add(asset_id)

    # --- queries, binned by true selectivity decade -------------------
    min_exponent = int(np.floor(np.log10(1.0 / num_assets)))
    bins: dict[int, list[FilteredQuery]] = {
        e: [] for e in range(min_exponent, 0)
    }
    attempts = 0
    max_attempts = 200 * queries_per_bin * len(bins)
    while attempts < max_attempts and any(
        len(v) < queries_per_bin for v in bins.values()
    ):
        attempts += 1
        num_tags = int(rng.integers(1, 4))
        chosen = rng.choice(
            vocabulary, size=num_tags, replace=False, p=tag_probs
        )
        tags = tuple(tag_names[int(c)] for c in sorted(chosen))
        qualifying = set.intersection(
            *(tag_to_assets[t] for t in tags)
        )
        if not qualifying:
            continue
        selectivity = len(qualifying) / num_assets
        exponent = int(np.floor(np.log10(selectivity)))
        exponent = max(min(exponent, -1), min_exponent)
        bucket = bins.get(exponent)
        if bucket is None or len(bucket) >= queries_per_bin:
            continue
        vector = rng.normal(0.0, 1.0, size=dim).astype(np.float32)
        bucket.append(
            FilteredQuery(
                vector=vector,
                tags=tags,
                true_selectivity=selectivity,
                qualifying_ids=tuple(sorted(qualifying)),
            )
        )

    return FilteredWorkload(
        asset_ids=tuple(asset_ids),
        vectors=vectors,
        tag_strings=tuple(tag_strings),
        bins={e: tuple(v) for e, v in bins.items() if v},
        metric=metric,
    )
