"""Evaluation metrics: recall@K and latency aggregates (§4.1.3)."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


def recall_at_k(
    truth: Sequence[str], retrieved: Sequence[str], k: int
) -> float:
    """|truth[:k] ∩ retrieved[:k]| / min(k, |truth|).

    The paper's recall definition: the fraction of the exact top-K
    present in the approximate top-K. Normalizing by ``min(k, |truth|)``
    keeps the metric meaningful when the filtered ground truth has
    fewer than K qualifying items.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    truth_set = set(truth[:k])
    if not truth_set:
        return 1.0
    hits = sum(1 for aid in retrieved[:k] if aid in truth_set)
    return hits / len(truth_set)


def mean_recall_at_k(
    truths: Sequence[Sequence[str]],
    retrieveds: Sequence[Sequence[str]],
    k: int,
) -> float:
    """Average recall@K over a query set."""
    if len(truths) != len(retrieveds):
        raise ValueError("truths and retrieveds must align")
    if not truths:
        return 0.0
    return sum(
        recall_at_k(t, r, k) for t, r in zip(truths, retrieveds)
    ) / len(truths)


@dataclass(frozen=True)
class LatencySummary:
    """Aggregate latency statistics over a query set (seconds)."""

    count: int
    mean_s: float
    p50_s: float
    p95_s: float
    p99_s: float
    std_s: float
    total_s: float

    @property
    def mean_ms(self) -> float:
        return self.mean_s * 1e3

    @property
    def p50_ms(self) -> float:
        return self.p50_s * 1e3

    @property
    def p95_ms(self) -> float:
        return self.p95_s * 1e3


def summarize_latencies(latencies_s: Sequence[float]) -> LatencySummary:
    """Mean / percentiles / stddev for a latency sample."""
    values = sorted(float(v) for v in latencies_s)
    if not values:
        return LatencySummary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    n = len(values)
    mean = sum(values) / n
    var = sum((v - mean) ** 2 for v in values) / n
    return LatencySummary(
        count=n,
        mean_s=mean,
        p50_s=_percentile(values, 0.50),
        p95_s=_percentile(values, 0.95),
        p99_s=_percentile(values, 0.99),
        std_s=math.sqrt(var),
        total_s=sum(values),
    )


def _percentile(sorted_values: list[float], q: float) -> float:
    """Linear-interpolated percentile over pre-sorted values."""
    if not sorted_values:
        return 0.0
    pos = q * (len(sorted_values) - 1)
    lo = int(math.floor(pos))
    hi = int(math.ceil(pos))
    if lo == hi:
        return sorted_values[lo]
    frac = pos - lo
    return sorted_values[lo] * (1 - frac) + sorted_values[hi] * frac
