"""Shared benchmark harness: population, tuning, tables (§4.1).

Every figure/table bench follows the same skeleton: build a dataset
analog, populate a database, tune ``nprobe`` until the paper's 90%
recall@100 operating point is reached, sweep the experiment's variable
and print the series the paper plots. The pieces of that skeleton live
here so each bench file only contains the experiment itself.
"""

from __future__ import annotations

import contextlib
import time
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.core.database import MicroNN
from repro.storage.engine import VectorRecord
from repro.workloads.metrics import mean_recall_at_k


def populate(
    db: MicroNN,
    asset_ids: Sequence[str],
    vectors: np.ndarray,
    attributes: Sequence[dict] | None = None,
    chunk_size: int = 2000,
) -> None:
    """Chunked bulk upsert of a whole dataset."""
    total = len(asset_ids)
    for start in range(0, total, chunk_size):
        end = min(start + chunk_size, total)
        records = [
            VectorRecord(
                asset_ids[i],
                vectors[i],
                attributes[i] if attributes is not None else {},
            )
            for i in range(start, end)
        ]
        db.upsert_batch(records)


def tune_nprobe(
    search: Callable[[np.ndarray, int], Sequence[str]],
    queries: np.ndarray,
    truth: Sequence[Sequence[str]],
    k: int,
    target_recall: float = 0.9,
    max_nprobe: int = 256,
) -> tuple[int, float]:
    """Smallest nprobe reaching the target mean recall@k (§4.1.3).

    ``search(query, nprobe)`` must return ranked asset ids. Doubles
    nprobe until the target is met, then binary-searches the gap.
    Returns (nprobe, achieved recall); if the target is unreachable the
    maximum probe count is returned with its recall.
    """

    def recall_at(nprobe: int) -> float:
        retrieved = [search(q, nprobe) for q in queries]
        return mean_recall_at_k(truth, retrieved, k)

    lo, hi = 1, 1
    recall = recall_at(hi)
    while recall < target_recall and hi < max_nprobe:
        lo = hi
        hi = min(hi * 2, max_nprobe)
        recall = recall_at(hi)
    if recall < target_recall:
        return hi, recall
    # Invariant: recall(hi) >= target, recall(lo) unknown or < target.
    best_probe, best_recall = hi, recall
    while lo + 1 < hi:
        mid = (lo + hi) // 2
        mid_recall = recall_at(mid)
        if mid_recall >= target_recall:
            hi, best_probe, best_recall = mid, mid, mid_recall
        else:
            lo = mid
    return best_probe, best_recall


def time_queries(
    run: Callable[[np.ndarray], object], queries: np.ndarray
) -> tuple[list[float], list[object]]:
    """Run one query at a time, returning per-query wall latencies."""
    latencies: list[float] = []
    results: list[object] = []
    for q in queries:
        start = time.perf_counter()
        results.append(run(q))
        latencies.append(time.perf_counter() - start)
    return latencies, results


#: Context-manager factory wrapped around table output. The benchmark
#: conftest installs pytest's capture-disable here so tables reach the
#: terminal (and ``tee``) even under captured runs; outside pytest it
#: stays a no-op.
_null_guard: Callable[[], object] = contextlib.nullcontext
_output_guard: Callable[[], object] = _null_guard


def set_output_guard(factory: Callable[[], object]) -> None:
    """Install a context-manager factory used while printing tables."""
    global _output_guard
    _output_guard = factory


def reset_output_guard() -> None:
    global _output_guard
    _output_guard = _null_guard


def print_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    note: str | None = None,
) -> None:
    """Aligned plain-text table — the bench output the paper's figures
    are read off of.

    Output is emitted inside the installed output guard (pytest capture
    suspension during bench runs) and, when the environment variable
    ``MICRONN_BENCH_RESULTS_FILE`` is set, also appended to that file
    as a durable artifact.
    """
    import os
    import sys

    materialized = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    rule = "-" * len(line)
    lines = ["", f"== {title} =="]
    if note:
        lines.append(note)
    lines.extend([line, rule])
    for row in materialized:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
    lines.append(rule)
    text = "\n".join(lines)

    with _output_guard():
        print(text)
        sys.stdout.flush()
    results_path = os.environ.get("MICRONN_BENCH_RESULTS_FILE")
    if results_path:
        with open(results_path, "a", encoding="utf-8") as fh:
            fh.write(text + "\n")


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 1:
            return f"{cell:.2f}"
        return f"{cell:.4g}"
    if isinstance(cell, int):
        return f"{cell:,}"
    return str(cell)


def fmt_mib(nbytes: int | float) -> float:
    return float(nbytes) / (1024 * 1024)


def ann_search_ids(
    db: MicroNN, k: int
) -> Callable[[np.ndarray, int], list[str]]:
    """Adapter: a tune_nprobe-compatible closure over db.search."""

    def search(query: np.ndarray, nprobe: int) -> list[str]:
        return list(db.search(query, k=k, nprobe=nprobe).asset_ids)

    return search
