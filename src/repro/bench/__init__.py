"""Benchmark harness utilities shared by the per-figure bench files."""

from repro.bench.harness import (
    ann_search_ids,
    fmt_mib,
    populate,
    print_table,
    time_queries,
    tune_nprobe,
)

__all__ = [
    "populate",
    "tune_nprobe",
    "time_queries",
    "print_table",
    "fmt_mib",
    "ann_search_ids",
]
