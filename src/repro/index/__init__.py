"""IVF indexing: clustering, construction, delta-store, maintenance."""

from repro.index.centroid_index import CentroidIndex
from repro.index.delta import DeltaStore
from repro.index.ivf import IVFBuilder
from repro.index.kmeans import (
    ClusteringResult,
    MiniBatchKMeans,
    plan_iterations,
    plan_num_clusters,
)
from repro.index.maintenance import IncrementalMaintainer, IndexMonitor

__all__ = [
    "CentroidIndex",
    "MiniBatchKMeans",
    "ClusteringResult",
    "plan_num_clusters",
    "plan_iterations",
    "IVFBuilder",
    "DeltaStore",
    "IndexMonitor",
    "IncrementalMaintainer",
]
