"""Two-level centroid index (the paper's §3.2 extension).

The base system scans the whole centroid table per query — fine while
``k = |X| / target_cluster_size`` stays in the thousands, and the paper
explicitly leaves indexing the centroids themselves as future work
("To scale to even larger collections, the centroid table itself could
also be indexed"; the Fig. 9 discussion also attributes the DEEPImage
batch crossover to the growing centroid-scan matrix product).

This module implements that extension: the centroids are themselves
clustered into *coarse cells* with the same mini-batch balanced
k-means, and partition selection becomes two-level — rank the coarse
cells by distance to the query, then rank only the centroids inside
the nearest cells. With ``c`` cells of ~``m`` centroids each, selection
costs ``O(c + probed·m)`` distance computations instead of ``O(c·m)``.

The trade-off is a (small) chance that a true nearest centroid lives in
an unprobed cell; the ``oversample`` knob controls how many candidate
centroids are ranked relative to ``nprobe``. Disabled by default —
enable via ``MicroNNConfig.centroid_index_threshold``.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import ConfigError
from repro.index.kmeans import MiniBatchKMeans, plan_num_clusters
from repro.query.distance import distances_to_one


class CentroidIndex:
    """Coarse quantizer over an IVF index's centroid table."""

    def __init__(
        self,
        coarse_centroids: np.ndarray,
        cell_members: list[np.ndarray],
        partition_ids: np.ndarray,
        centroids: np.ndarray,
        metric: str,
    ) -> None:
        if len(coarse_centroids) != len(cell_members):
            raise ConfigError("cells and member lists must align")
        self._coarse = coarse_centroids
        self._members = cell_members
        self._partition_ids = partition_ids
        self._centroids = centroids
        self._metric = metric

    @property
    def num_cells(self) -> int:
        return len(self._coarse)

    @property
    def num_centroids(self) -> int:
        return len(self._partition_ids)

    @classmethod
    def build(
        cls,
        partition_ids: np.ndarray,
        centroids: np.ndarray,
        metric: str,
        cell_size: int = 64,
        seed: int = 0,
    ) -> "CentroidIndex":
        """Cluster the centroid table into coarse cells."""
        n = len(centroids)
        if n == 0:
            raise ConfigError("cannot index an empty centroid table")
        num_cells = plan_num_clusters(n, cell_size)
        trainer = MiniBatchKMeans(
            n_clusters=num_cells,
            dim=centroids.shape[1],
            metric=metric,
            balance_penalty=1.0,
            seed=seed,
        )
        trainer.initialize(centroids)
        # The centroid table is small; a few full passes are cheap and
        # give a stable coarse quantizer.
        for _ in range(8):
            trainer.partial_fit(centroids)
        labels = trainer.assign(centroids)
        members = [
            np.flatnonzero(labels == cell) for cell in range(num_cells)
        ]
        return cls(
            coarse_centroids=trainer.centroids.copy(),
            cell_members=members,
            partition_ids=np.asarray(partition_ids, dtype=np.int64),
            centroids=np.ascontiguousarray(centroids, dtype=np.float32),
            metric=metric,
        )

    def select(
        self, query: np.ndarray, nprobe: int, oversample: float = 4.0
    ) -> list[int]:
        """Return ~``nprobe`` partition ids nearest to the query.

        Coarse cells are ranked by centroid distance; cells are opened
        in order until at least ``nprobe * oversample`` candidate
        centroids are available, and those candidates are ranked
        exactly. Distances computed: ``num_cells`` + candidates, versus
        ``num_centroids`` for the flat scan.
        """
        if nprobe < 1:
            raise ConfigError("nprobe must be >= 1")
        target = max(int(np.ceil(nprobe * max(oversample, 1.0))), nprobe)
        cell_dist = distances_to_one(query, self._coarse, self._metric)
        candidate_rows: list[np.ndarray] = []
        total = 0
        for cell in np.argsort(cell_dist, kind="stable"):
            members = self._members[int(cell)]
            if members.size == 0:
                continue
            candidate_rows.append(members)
            total += members.size
            if total >= target:
                break
        rows = np.concatenate(candidate_rows)
        dist = distances_to_one(
            query, self._centroids[rows], self._metric
        )
        take = min(nprobe, rows.size)
        order = np.argpartition(dist, take - 1)[:take]
        ranked = sorted(
            (float(dist[i]), int(self._partition_ids[rows[i]]))
            for i in order
        )
        return [pid for _, pid in ranked]

    def selection_cost(self, nprobe: int, oversample: float = 4.0) -> int:
        """Expected distance computations per selection (for benches)."""
        target = max(int(np.ceil(nprobe * max(oversample, 1.0))), nprobe)
        return self.num_cells + min(target, self.num_centroids)
