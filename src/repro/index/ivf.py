"""IVF index construction over the relational storage (paper §3.1).

:class:`IVFBuilder` performs a full (re)build:

1. decide ``k`` from the collection size and the target cluster size;
2. train the quantizer with mini-batches *streamed from disk* — only
   one mini-batch (plus centroids) is resident at any time;
3. stream every vector back through the trained quantizer to compute
   its final partition, and rewrite partition assignments in the
   clustered vector table;
4. persist centroids and record the post-build average partition size
   as the index monitor's baseline.

The "InMemory"/full-k-means comparison point of Figures 6 and 8 is this
same builder with ``minibatch_fraction=1.0`` — the mini-batch then *is*
the whole collection and must be buffered, which is precisely the
memory cliff the paper plots.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro.core.config import MicroNNConfig
from repro.core.types import BuildReport
from repro.index.kmeans import (
    MiniBatchKMeans,
    plan_iterations,
    plan_num_clusters,
)
from repro.storage.engine import StorageEngine
from repro.storage.quantization import (
    ProductQuantizer,
    Quantizer,
    SQ8Trainer,
)

#: Memory-tracker category for clustering working memory.
BUILD_CATEGORY = "index_build"

#: Meta keys maintained by the builder.
META_BASELINE_AVG = "baseline_avg_partition_size"
META_LAST_BUILD_VECTORS = "last_build_vectors"


class IVFBuilder:
    """Full index (re)construction."""

    def __init__(self, engine: StorageEngine, config: MicroNNConfig) -> None:
        self._engine = engine
        self._config = config

    def build(self) -> BuildReport:
        """(Re)cluster the whole collection, including the delta-store."""
        engine = self._engine
        config = self._config
        tracker = engine.tracker
        start = time.perf_counter()
        tracker.reset_peak()

        num_vectors = engine.count_vectors(include_delta=True)
        if num_vectors == 0:
            engine.replace_centroids(
                np.empty((0, config.dim), dtype=np.float32), []
            )
            engine.set_meta(META_BASELINE_AVG, "0")
            engine.set_meta(META_LAST_BUILD_VECTORS, "0")
            return BuildReport(
                num_vectors=0,
                num_partitions=0,
                iterations=0,
                minibatch_size=0,
                row_changes=0,
                duration_s=time.perf_counter() - start,
                peak_memory_bytes=tracker.peak_bytes,
            )

        rows_before = engine.accountant.rows_written
        k = plan_num_clusters(num_vectors, config.target_cluster_size)
        minibatch_size = self._plan_minibatch(num_vectors)
        iterations = config.kmeans_iterations or plan_iterations(
            num_vectors, minibatch_size
        )

        trainer = self._train_quantizer(
            k, minibatch_size, iterations, num_vectors
        )
        counts = self._assign_all(trainer, minibatch_size)
        engine.replace_centroids(trainer.centroids, counts)
        if config.uses_quantization:
            self.refresh_quantizer()

        avg_size = num_vectors / max(k, 1)
        engine.set_meta(META_BASELINE_AVG, repr(avg_size))
        engine.set_meta(META_LAST_BUILD_VECTORS, str(num_vectors))
        engine.purge_caches()

        return BuildReport(
            num_vectors=num_vectors,
            num_partitions=k,
            iterations=iterations,
            minibatch_size=minibatch_size,
            row_changes=engine.accountant.rows_written - rows_before,
            duration_s=time.perf_counter() - start,
            peak_memory_bytes=tracker.peak_bytes,
        )

    # ------------------------------------------------------------------

    def refresh_quantizer(self) -> int:
        """Retrain the active quantizer and rewrite every code.

        A full build is the natural retrain point — the same moment the
        k-means quantizer is refreshed — and maintenance also calls
        this when upsert drift degrades the trained quantizer. For SQ8
        the pass is a streaming per-dimension min/max accumulation (a
        few bytes of state per dimension); for PQ a bounded
        ``pq_train_sample``-sized sample is drawn and each sub-space
        codebook is k-means-trained on it. Either way the batched code
        rewrite follows, and ``rebuild_codes`` persists the quantizer
        and the codes in one transaction so the pair can never go out
        of sync. Returns codes written.
        """
        quantizer: Quantizer | None
        if self._config.quantization == "pq":
            quantizer = self._train_product_quantizer()
        else:
            trainer = SQ8Trainer(self._config.dim)
            for _, matrix in self._engine.iter_vector_batches(
                batch_size=4096
            ):
                trainer.update(matrix)
            quantizer = trainer.finish() if trainer.count else None
        if quantizer is None:
            return 0
        return self._engine.rebuild_codes(quantizer)

    def _train_product_quantizer(self) -> ProductQuantizer | None:
        """Train PQ codebooks on a bounded uniform sample.

        Sub-space k-means needs its sample in memory (unlike SQ8's
        streaming min/max), so the sample is capped at
        ``pq_train_sample`` vectors — codebooks of 256 centroids
        converge long before the full collection is seen — and its
        residency is charged to the build's memory category like every
        other training buffer.
        """
        engine = self._engine
        config = self._config
        asset_ids = engine.all_asset_ids()
        if not asset_ids:
            return None
        rng = np.random.default_rng(config.seed)
        sample_ids = _sample_ids(
            asset_ids, min(len(asset_ids), config.pq_train_sample), rng
        )
        _, sample = engine.fetch_vectors_by_asset_ids(sample_ids)
        if sample.shape[0] == 0:
            return None
        with engine.tracker.transient(
            BUILD_CATEGORY, int(sample.nbytes)
        ):
            return ProductQuantizer.train(
                sample,
                config.pq_num_subvectors,
                seed=config.seed,
            )

    def _plan_minibatch(self, num_vectors: int) -> int:
        config = self._config
        if config.minibatch_size is not None:
            return min(config.minibatch_size, num_vectors)
        derived = int(np.ceil(num_vectors * config.minibatch_fraction))
        return int(np.clip(derived, 1, num_vectors))

    def _train_quantizer(
        self,
        k: int,
        minibatch_size: int,
        iterations: int,
        num_vectors: int,
    ) -> MiniBatchKMeans:
        """Algorithm 1 training loop with disk-streamed mini-batches."""
        engine = self._engine
        config = self._config
        tracker = engine.tracker
        rng = np.random.default_rng(config.seed)
        trainer = MiniBatchKMeans(
            n_clusters=k,
            dim=config.dim,
            metric=config.metric,
            balance_penalty=config.balance_penalty,
            seed=config.seed,
        )
        # The id list is the only whole-collection state held in memory:
        # a few bytes per vector, the price of uniform random sampling.
        asset_ids = engine.all_asset_ids()
        centroid_bytes = k * config.vector_nbytes()

        init_ids = _sample_ids(asset_ids, min(k, len(asset_ids)), rng)
        _, init_matrix = engine.fetch_vectors_by_asset_ids(init_ids)
        with tracker.transient(
            BUILD_CATEGORY, int(init_matrix.nbytes) + centroid_bytes
        ):
            trainer.initialize(init_matrix)
        del init_matrix

        full_batch = minibatch_size >= len(asset_ids)
        for _ in range(iterations):
            if full_batch:
                batch_ids = list(asset_ids)
            else:
                batch_ids = _sample_ids(asset_ids, minibatch_size, rng)
            _, batch = engine.fetch_vectors_by_asset_ids(batch_ids)
            with tracker.transient(
                BUILD_CATEGORY, int(batch.nbytes) + centroid_bytes
            ):
                trainer.partial_fit(batch)
            del batch
        return trainer

    def _assign_all(
        self, trainer: MiniBatchKMeans, minibatch_size: int
    ) -> Sequence[int]:
        """Stream all vectors through g(C, ·) and rewrite assignments.

        The streaming batch honours the same memory budget as training
        (floored so tiny mini-batches don't make assignment crawl), so
        the build's peak residency is set by the mini-batch knob — the
        property Figure 8b sweeps.
        """
        engine = self._engine
        tracker = engine.tracker
        counts = np.zeros(trainer.n_clusters, dtype=np.int64)
        centroid_bytes = (
            trainer.n_clusters * self._config.vector_nbytes()
        )
        batch_size = int(np.clip(minibatch_size, 64, 4096))
        moves: list[tuple[str, int]] = []
        for ids, matrix in engine.iter_vector_batches(batch_size=batch_size):
            with tracker.transient(
                BUILD_CATEGORY, int(matrix.nbytes) + centroid_bytes
            ):
                labels = trainer.assign(matrix)
            for asset_id, label in zip(ids, labels):
                moves.append((asset_id, int(label)))
                counts[label] += 1
            if len(moves) >= 8192:
                engine.set_partition_assignments(moves)
                moves.clear()
        if moves:
            engine.set_partition_assignments(moves)
        return counts.tolist()


def _sample_ids(
    asset_ids: list[str], size: int, rng: np.random.Generator
) -> list[str]:
    """Uniform sample of ``size`` asset ids without replacement."""
    if size >= len(asset_ids):
        return list(asset_ids)
    chosen = rng.choice(len(asset_ids), size=size, replace=False)
    return [asset_ids[i] for i in chosen]
