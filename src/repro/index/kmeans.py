"""Mini-batch k-means with flexible balance constraints (Algorithm 1).

This is the paper's quantizer trainer: Sculley's web-scale mini-batch
k-means [35] keeps the memory footprint at one mini-batch instead of
the whole collection, and a cluster-size penalty in the ``NEAREST``
assignment (Liu et al. 2018 [22]) spreads vectors across nearby
centroids instead of growing a few "mega" clusters.

The implementation is deliberately storage-agnostic: the trainer is fed
mini-batches by the caller (:class:`~repro.index.ivf.IVFBuilder` streams
them from disk), so the trainer itself never holds more than
``(minibatch_size + n_clusters) × dim`` floats — exactly the paper's
memory argument, and what Figure 8b sweeps.

Setting ``minibatch_fraction = 1.0`` degenerates into full-batch
Lloyd-style k-means over the entire collection, which is the paper's
``InMemory`` / "100% mini-batch" comparison point (Figures 6 and 8).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import ConfigError
from repro.query.distance import normalize_rows, pairwise_distances


@dataclass(frozen=True)
class ClusteringResult:
    """Trained quantizer: centroids plus training telemetry."""

    centroids: np.ndarray
    iterations: int
    minibatch_size: int
    #: Per-centroid assignment counts observed during training (the
    #: ``v`` array of Algorithm 1) — not the final partition sizes.
    training_counts: np.ndarray


def plan_num_clusters(num_vectors: int, target_cluster_size: int) -> int:
    """k = |X| / t (Algorithm 1, line 1), at least one cluster."""
    if num_vectors <= 0:
        return 0
    return max(1, round(num_vectors / target_cluster_size))


def plan_iterations(
    num_vectors: int, minibatch_size: int, epochs: float = 3.0
) -> int:
    """Default iteration count: ~``epochs`` expected passes over X.

    Clamped to [10, 300] so tiny datasets still converge and huge ones
    do not train forever; Figure 8 shows recall is flat across a very
    wide range of effective sample counts.
    """
    if minibatch_size <= 0:
        raise ConfigError("minibatch_size must be positive")
    raw = int(np.ceil(epochs * num_vectors / minibatch_size))
    return int(np.clip(raw, 10, 300))


class MiniBatchKMeans:
    """Algorithm 1: streaming quantizer training.

    Parameters
    ----------
    n_clusters:
        Number of centroids ``k``.
    dim:
        Vector dimensionality.
    metric:
        ``"l2"``, ``"cosine"`` (spherical: centroids re-normalized after
        every step) or ``"dot"`` (trained in L2 space, standard IVF
        practice for inner-product search).
    balance_penalty:
        Weight λ of the cluster-size penalty inside ``NEAREST``. With
        λ=0 this is plain mini-batch k-means; larger λ trades quantizer
        distortion for partition balance.
    seed:
        Seed for centroid initialization tie-breaking.
    """

    def __init__(
        self,
        n_clusters: int,
        dim: int,
        metric: str = "l2",
        balance_penalty: float = 1.0,
        seed: int = 0,
    ) -> None:
        if n_clusters < 1:
            raise ConfigError("n_clusters must be >= 1")
        if dim < 1:
            raise ConfigError("dim must be >= 1")
        if balance_penalty < 0:
            raise ConfigError("balance_penalty must be >= 0")
        self._k = n_clusters
        self._dim = dim
        self._metric = metric
        self._balance_penalty = balance_penalty
        self._rng = np.random.default_rng(seed)
        self._centroids: np.ndarray | None = None
        # v in Algorithm 1: per-center assignment counts, which double
        # as the denominators of the per-center learning rate 1/v[c].
        self._counts = np.zeros(n_clusters, dtype=np.int64)
        # Running scale of assignment distances; makes the additive
        # balance penalty comparable to the data's distance magnitude.
        self._distance_scale = 0.0
        self._iterations_run = 0

    @property
    def n_clusters(self) -> int:
        return self._k

    @property
    def centroids(self) -> np.ndarray:
        if self._centroids is None:
            raise ConfigError("quantizer is not initialized yet")
        return self._centroids

    @property
    def is_initialized(self) -> bool:
        return self._centroids is not None

    def initialize(self, sample: np.ndarray) -> None:
        """Seed centroids with k vectors drawn from a data sample.

        Algorithm 1 line 2 initializes each centroid with a random
        ``x ∈ X``; if the provided sample is smaller than k the
        remainder is filled with jittered copies so every centroid
        starts near the data manifold.
        """
        sample = np.asarray(sample, dtype=np.float32)
        if sample.ndim != 2 or sample.shape[1] != self._dim:
            raise ConfigError(
                f"init sample must be (n, {self._dim}), got {sample.shape}"
            )
        if sample.shape[0] == 0:
            raise ConfigError("cannot initialize from an empty sample")
        n = sample.shape[0]
        if n >= self._k:
            chosen = self._rng.choice(n, size=self._k, replace=False)
            centroids = sample[chosen].copy()
        else:
            reps = self._rng.choice(n, size=self._k, replace=True)
            centroids = sample[reps].copy()
            extra = self._k - n
            if extra > 0:
                scale = np.std(sample) or 1.0
                jitter = self._rng.normal(
                    0.0, 0.01 * scale, size=(self._k, self._dim)
                ).astype(np.float32)
                centroids += jitter
        if self._metric == "cosine":
            centroids = normalize_rows(centroids)
        self._centroids = centroids.astype(np.float32)

    def partial_fit(self, batch: np.ndarray) -> None:
        """One Algorithm 1 iteration over a mini-batch (lines 6-13)."""
        if self._centroids is None:
            self.initialize(batch)
        batch = np.asarray(batch, dtype=np.float32)
        if batch.ndim != 2 or batch.shape[1] != self._dim:
            raise ConfigError(
                f"batch must be (n, {self._dim}), got {batch.shape}"
            )
        if batch.shape[0] == 0:
            return
        assignments, distances = self._nearest_balanced(batch)
        # Per-center streaming mean update with learning rate 1/v[c].
        for x, c in zip(batch, assignments):
            self._counts[c] += 1
            eta = 1.0 / self._counts[c]
            self._centroids[c] = (1.0 - eta) * self._centroids[c] + eta * x
        if self._metric == "cosine":
            self._centroids = normalize_rows(self._centroids)
        mean_dist = float(np.mean(distances)) if distances.size else 0.0
        if self._distance_scale == 0.0:
            self._distance_scale = mean_dist
        else:
            self._distance_scale = (
                0.9 * self._distance_scale + 0.1 * mean_dist
            )
        self._iterations_run += 1

    def _nearest_balanced(
        self, batch: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """The NEAREST routine: nearest centroid with a size penalty.

        The penalty grows linearly with a cluster's share of all
        training assignments, scaled by the running mean assignment
        distance so λ is unitless and data-scale independent:

            score(x, c) = d(x, c) + λ · scale · v[c] / mean(v)

        Oversized clusters thus repel new assignments, which spreads
        vectors across *nearby* clusters (the distances still dominate)
        rather than hard-capping sizes.
        """
        dist = pairwise_distances(
            batch, self._centroids, self._training_metric()
        )
        if self._balance_penalty > 0.0 and self._counts.sum() > 0:
            mean_count = max(float(self._counts.mean()), 1.0)
            load = self._counts / mean_count
            scale = self._distance_scale or float(np.mean(dist))
            dist = dist + self._balance_penalty * scale * load[None, :]
        assignments = np.argmin(dist, axis=1)
        chosen = dist[np.arange(dist.shape[0]), assignments]
        return assignments, chosen

    def _training_metric(self) -> str:
        # Inner-product indexes are conventionally trained in L2 space.
        return "l2" if self._metric == "dot" else self._metric

    def assign(self, vectors: np.ndarray) -> np.ndarray:
        """Final partition assignment g(C, x): plain nearest centroid.

        Algorithm 1 lines 14-16 assign every vector to its true nearest
        centroid (no penalty) once training has finished.
        """
        dist = pairwise_distances(
            vectors, self.centroids, self._training_metric()
        )
        return np.argmin(dist, axis=1)

    def result(self) -> ClusteringResult:
        return ClusteringResult(
            centroids=self.centroids.copy(),
            iterations=self._iterations_run,
            minibatch_size=0,
            training_counts=self._counts.copy(),
        )
