"""Index monitoring and incremental maintenance (paper §3.6).

Two cooperating pieces:

- :class:`IndexMonitor` tracks index health — delta-store backlog and
  the growth of the average partition size relative to the baseline
  recorded at the last full build — and recommends an action: nothing,
  an incremental flush, or a full rebuild (the paper's client-visible
  "threshold on average partition size growth").

- :class:`IncrementalMaintainer` performs the incremental flush: every
  delta vector is assigned to the IVF partition with the closest
  centroid and the affected centroids are updated to reflect their new
  content via a running mean (the VLAD-style update [1] the paper
  cites). Cost is proportional to the *delta* size — a handful of row
  rewrites and centroid updates — instead of rewriting the whole table,
  which is the entire point of Figure 10d's I/O comparison.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.config import MicroNNConfig
from repro.core.types import (
    IndexStats,
    MaintenanceAction,
    MaintenanceReport,
)
from repro.index.delta import DeltaStore
from repro.index.ivf import IVFBuilder, META_BASELINE_AVG
from repro.query.distance import pairwise_distances
from repro.storage.codec import encode_code_matrix
from repro.storage.engine import StorageEngine

#: Fraction of flushed vector components allowed to clip outside the
#: trained SQ8 range before maintenance retrains it. Clipped
#: components carry unbounded quantization error, so a drifting upsert
#: stream must eventually trigger a retrain ("Quantization for Vector
#: Search under Streaming Updates" keeps recall by retraining on
#: distribution shift, not on every insert).
QUANTIZER_DRIFT_CLIP_FRACTION = 0.01

#: Fraction of flushed vectors whose PQ reconstruction error may
#: exceed the trained-error envelope before maintenance retrains the
#: codebooks. PQ has no clipping — a drifted vector still encodes, just
#: badly — so its drift signal is reconstruction error against the
#: training-time baseline (see ProductQuantizer.drift_fraction).
PQ_DRIFT_FRACTION = 0.05


def quantizer_drifted(quantizer, matrix) -> bool:
    """Whether ``matrix`` has drifted off the trained quantizer.

    The kind-specific drift signals behind maintenance retrains: SQ8
    watches the clip fraction (components outside the trained ranges),
    PQ the fraction of vectors whose reconstruction error leaves the
    trained envelope.
    """
    if quantizer.kind == "pq":
        return quantizer.drift_fraction(matrix) > PQ_DRIFT_FRACTION
    return (
        quantizer.clip_fraction(matrix) > QUANTIZER_DRIFT_CLIP_FRACTION
    )


class IndexMonitor:
    """Tracks index quality signals and recommends maintenance actions."""

    def __init__(self, engine: StorageEngine, config: MicroNNConfig) -> None:
        self._engine = engine
        self._config = config

    def stats(self) -> IndexStats:
        """Current index shape, straight from the catalog tables."""
        sizes = self._engine.partition_sizes(include_delta=False)
        delta = self._engine.delta_size()
        num_partitions = self._engine.centroid_count()
        indexed = sum(sizes.values())
        values = list(sizes.values())
        avg = indexed / num_partitions if num_partitions else 0.0
        baseline_raw = self._engine.get_meta(META_BASELINE_AVG)
        baseline = float(baseline_raw) if baseline_raw else 0.0
        quantized = self._engine.count_codes()
        # Code bytes/vector and the achieved compression come from the
        # TRAINED quantizer, not the config: a database reopened under
        # the other scheme still holds the old codes until the next
        # build, and load_quantizer() is None for the new scheme then —
        # reporting the config's width would describe codes that do not
        # exist. Until a quantizer is trained (and codes with it, they
        # commit together) scans are full-precision: honest 0 and 1.0.
        quantizer = (
            self._engine.load_quantizer()
            if self._config.uses_quantization
            else None
        )
        code_bytes = (
            quantizer.code_width
            if quantizer is not None and quantized
            else 0
        )
        compression = (
            (4.0 * self._config.dim) / code_bytes if code_bytes else 1.0
        )
        dead_bytes, blob_bytes = self._engine.blob_dead_bytes()
        return IndexStats(
            total_vectors=indexed + delta,
            indexed_vectors=indexed,
            delta_vectors=delta,
            num_partitions=num_partitions,
            avg_partition_size=avg,
            max_partition_size=max(values) if values else 0,
            min_partition_size=min(values) if values else 0,
            baseline_avg_partition_size=baseline,
            quantization=self._config.quantization,
            quantized_vectors=quantized,
            code_bytes_per_vector=code_bytes,
            compression_ratio=compression,
            storage_backend=self._engine.storage_backend,
            telemetry_enabled=self._engine.metrics.enabled,
            quarantined_partitions=len(
                self._engine.quarantined_partitions
            ),
            events_logged=self._engine.events.total_emitted,
            slow_queries=self._engine.events.count("slow_query"),
            storage_dead_bytes=dead_bytes,
            storage_dead_ratio=(
                dead_bytes / blob_bytes if blob_bytes else 0.0
            ),
        )

    def recommend(self) -> MaintenanceAction:
        """Decide what maintenance, if any, the index needs now.

        A full rebuild is recommended when folding the current delta
        into the index would push the average partition size past the
        configured growth limit (or when there is no index yet); an
        incremental flush when the delta backlog alone crossed its
        threshold; otherwise nothing.
        """
        stats = self.stats()
        if stats.total_vectors == 0:
            return MaintenanceAction.NONE
        if stats.num_partitions == 0:
            # Nothing has ever been clustered; only a build helps.
            return MaintenanceAction.FULL_REBUILD
        threshold = self._config.rebuild_growth_threshold
        if self._projected_growth(stats) >= threshold:
            return MaintenanceAction.FULL_REBUILD
        if stats.delta_vectors >= self._config.delta_flush_threshold:
            return MaintenanceAction.INCREMENTAL_FLUSH
        return MaintenanceAction.NONE

    def _projected_growth(self, stats: IndexStats) -> float:
        """Average-partition growth if the delta were flushed now."""
        if stats.baseline_avg_partition_size <= 0 or stats.num_partitions == 0:
            return 0.0
        projected_avg = stats.total_vectors / stats.num_partitions
        return (projected_avg / stats.baseline_avg_partition_size) - 1.0


class IncrementalMaintainer:
    """Drains the delta-store into the IVF index without re-clustering."""

    def __init__(self, engine: StorageEngine, config: MicroNNConfig) -> None:
        self._engine = engine
        self._config = config
        self._delta = DeltaStore(engine)
        self._monitor = IndexMonitor(engine, config)

    def flush(self) -> MaintenanceReport:
        """Assign every delta vector to its nearest partition.

        Centroids of the receiving partitions are updated with the
        running mean of their new content so later queries and flushes
        see centroids that reflect what the partitions actually hold.
        """
        engine = self._engine
        start = time.perf_counter()
        stats_before = self._monitor.stats()
        rows_before = engine.accountant.rows_written

        delta = self._delta.load(use_cache=False)
        if len(delta) == 0:
            return MaintenanceReport(
                action=MaintenanceAction.NONE,
                duration_s=time.perf_counter() - start,
                stats_before=stats_before,
                stats_after=stats_before,
            )

        partition_ids, centroids = engine.load_centroids()
        if len(partition_ids) == 0:
            raise RuntimeError(
                "incremental flush requires an existing IVF index; "
                "run a full build first"
            )

        metric = (
            "l2" if self._config.metric == "dot" else self._config.metric
        )
        dist = pairwise_distances(delta.matrix, centroids, metric)
        nearest = np.argmin(dist, axis=1)

        counts = {
            int(pid): int(count)
            for pid, count in self._engine.partition_sizes().items()
        }
        centroid_updates: dict[int, tuple[np.ndarray, int]] = {}
        moves: list[tuple[str, int]] = []
        working = {}
        for row, choice in enumerate(nearest):
            pid = int(partition_ids[choice])
            moves.append((delta.asset_ids[row], pid))
            if pid not in working:
                working[pid] = [
                    centroids[choice].astype(np.float64),
                    counts.get(pid, 0),
                ]
            centroid, count = working[pid]
            # Running mean: c <- (c*n + x) / (n + 1), the cited
            # incremental VLAD-style centroid adjustment.
            count += 1
            centroid += (
                delta.matrix[row].astype(np.float64) - centroid
            ) / count
            working[pid][1] = count
        for pid, (centroid, count) in working.items():
            centroid_updates[pid] = (centroid.astype(np.float32), count)

        code_rows, retrain_needed = self._plan_flush_codes(delta, moves)
        # Moves and codes commit atomically: a crash can never leave
        # flushed vectors sitting uncoded (= invisible) inside a
        # quantized partition.
        engine.set_partition_assignments(moves, code_rows=code_rows)
        engine.update_centroids(centroid_updates)
        if retrain_needed:
            # Drain pending shadow audits before the quantizer changes
            # underneath them, and re-arm the dip window afterwards so
            # pre-retrain recall never triggers a post-retrain dip.
            auditor = getattr(engine, "auditor", None)
            if auditor is not None:
                auditor.flush()
            IVFBuilder(engine, self._config).refresh_quantizer()
            engine.metrics.counter(
                "micronn_maintenance_actions_total",
                "Maintenance actions taken, by kind.",
                labels=("action",),
            ).inc(action="retrain")
            engine.events.emit(
                "retrain",
                quantization=self._config.quantization,
                vectors_flushed=len(moves),
            )
            if auditor is not None:
                auditor.reset_window()

        stats_after = self._monitor.stats()
        return MaintenanceReport(
            action=MaintenanceAction.INCREMENTAL_FLUSH,
            vectors_flushed=len(moves),
            centroids_updated=len(centroid_updates),
            row_changes=engine.accountant.rows_written - rows_before,
            duration_s=time.perf_counter() - start,
            stats_before=stats_before,
            stats_after=stats_after,
        )

    def _plan_flush_codes(
        self, delta, moves: list[tuple[str, int]]
    ) -> tuple[list[tuple[int, str, int, bytes]] | None, bool]:
        """Quantized codes for the vectors a flush is about to move.

        Returns ``(code_rows, retrain_needed)``. The cheap common case
        encodes just the flushed vectors with the *existing* quantizer
        — cost proportional to the delta, like the flush itself — and
        the caller commits the rows atomically with the moves. Two
        situations force the expensive path (full retrain + code
        rewrite after the moves) instead: no quantizer exists yet (a
        pre-quantization database being upgraded in place), or the
        incoming vectors drifted past the kind-specific threshold
        (:func:`quantizer_drifted`), meaning the data distribution has
        moved. A crash before the retrain finishes leaves uncoded
        vectors, which ``integrity_check`` reports explicitly.
        """
        if not self._config.uses_quantization:
            return None, False
        quantizer = self._engine.load_quantizer()
        if quantizer is None or quantizer_drifted(
            quantizer, delta.matrix
        ):
            return None, True
        pid_of = dict(moves)
        blobs = encode_code_matrix(quantizer.encode(delta.matrix))
        code_rows = [
            (pid_of[aid], aid, vid, blob)
            for aid, vid, blob in zip(
                delta.asset_ids, delta.vector_ids, blobs
            )
        ]
        return code_rows, False
