"""Delta-store view (paper §3.6).

New and updated vectors are staged in a *delta-store* until index
maintenance folds them into IVF partitions. Physically the delta is
just the reserved partition id inside the clustered vector table — it
shares the storage layout, data locality and snapshot semantics of
every other partition, and the ANN search algorithm simply scans it as
"one more partition" (Algorithm 2, line 3).

This module is the thin, typed view over that reserved partition used
by the executor (always scan it) and by maintenance (drain it).
"""

from __future__ import annotations

from repro.core.config import DELTA_PARTITION_ID
from repro.storage.cache import CachedPartition
from repro.storage.engine import StorageEngine


class DeltaStore:
    """Read-side accessor for the reserved delta partition."""

    def __init__(self, engine: StorageEngine) -> None:
        self._engine = engine

    @property
    def partition_id(self) -> int:
        return DELTA_PARTITION_ID

    def size(self) -> int:
        """Number of vectors currently staged in the delta-store."""
        return self._engine.delta_size()

    def is_empty(self) -> bool:
        return self.size() == 0

    def load(self, use_cache: bool = True) -> CachedPartition:
        """Decode the delta partition (vector ids + matrix)."""
        return self._engine.load_partition(
            DELTA_PARTITION_ID, use_cache=use_cache
        )

    def asset_ids(self) -> tuple[str, ...]:
        return self.load().asset_ids
