"""Gather stage of scatter-gather search: merge + stats aggregation.

Every read on a :class:`~repro.shard.ShardedMicroNN` fans out to all
shards and comes back through here. Two jobs:

1. **Top-k merge.** Each shard returns its own ranked top-k; the
   global top-k is a k-way merge through
   :func:`repro.query.heap.merge_candidate_streams` — the *same*
   function the unsharded executor's heap merge uses — so the sharded
   ordering contract is the unsharded one by construction: rank by
   ``(distance, asset_id)``, ties broken lexicographically on the id.
   Shards partition the id space disjointly (hash routing), so no
   cross-shard duplicates exist; the merge's dedup is kept anyway as a
   cheap invariant net for custom routers that might violate
   disjointness.

2. **Stats aggregation.** Physical cost counters (bytes, rows, cache
   traffic, io/compute thread time) are *sums* over shards — the work
   genuinely happened on every shard. Wall-clock ``latency_s`` is the
   caller-measured scatter-gather wall time (never a sum: shards run
   concurrently). ``queue_wait_ms`` is the max across shards — the
   slowest shard's admission wait is the one the caller observed.
   Per-shard attribution stays available on the result
   (:class:`ShardedSearchResult.shard_stats`).

The merge operates on *surfaced* distances (the public
``Neighbor.distance``) — all a shard result exposes. That is safe
because the single-database pipeline surfaces through the same
canonical ordering (``repro.query.heap.surfaced_neighbors``: rank by
surfaced ``(distance, asset_id)``, re-sorting the rare pair of
distinct squared values that ``sqrt`` collapses to one float32), so
sharded and unsharded databases order identically even across sqrt
collisions.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Sequence

from repro.core.types import (
    BatchSearchResult,
    BuildReport,
    IndexStats,
    MaintenanceAction,
    MaintenanceReport,
    Neighbor,
    PlanKind,
    QueryStats,
    SearchResult,
)
from repro.query.heap import Candidate, merge_candidate_streams

#: Severity order of maintenance actions; aggregation and the
#: facade's ``recommended_action`` both report the heaviest.
ACTION_SEVERITY = {
    MaintenanceAction.NONE: 0,
    MaintenanceAction.INCREMENTAL_FLUSH: 1,
    MaintenanceAction.FULL_REBUILD: 2,
}


@dataclass(frozen=True, slots=True)
class ShardedSearchResult(SearchResult):
    """A merged scatter-gather result with per-shard attribution.

    Substitutable anywhere a :class:`SearchResult` is expected —
    ``stats`` is the aggregate (``stats.shards_probed`` says how wide
    the scatter was) — plus ``shard_stats``, the untouched per-shard
    :class:`QueryStats` in shard order for per-shard bytes/io/compute
    attribution.

    ``degraded_shards`` names the shard database files that could not
    be searched (dead, corrupt, or over their per-shard timeout) and
    were therefore EXCLUDED from this merge: the result is the exact
    top-k over the surviving shards only, and ``stats.degraded`` is
    set. Empty on a healthy scatter.
    """

    shard_stats: tuple[QueryStats, ...] = ()
    degraded_shards: tuple[str, ...] = ()


def merge_neighbors(
    per_shard: Sequence[Sequence[Neighbor]], k: int
) -> tuple[Neighbor, ...]:
    """Merge per-shard ranked neighbor lists into the global top-k."""
    streams = [
        [Candidate(n.asset_id, n.distance) for n in neighbors]
        for neighbors in per_shard
    ]
    return tuple(
        Neighbor(asset_id=c.asset_id, distance=c.distance)
        for c in merge_candidate_streams(streams, k)
    )


def merge_search_results(
    results: Sequence[SearchResult],
    k: int,
    latency_s: float,
    degraded_shards: Sequence[str] = (),
) -> ShardedSearchResult:
    """Gather one query's per-shard results into the global result.

    ``degraded_shards`` names shards that produced no result (dead /
    corrupt / timed out); they are reflected on the result and force
    the aggregate's ``degraded`` flag.
    """
    if not results:
        raise ValueError("at least one shard result is required")
    return ShardedSearchResult(
        neighbors=merge_neighbors([r.neighbors for r in results], k),
        stats=aggregate_query_stats(
            [r.stats for r in results],
            latency_s,
            degraded=bool(degraded_shards),
        ),
        shard_stats=tuple(r.stats for r in results),
        degraded_shards=tuple(degraded_shards),
    )


def merge_batch_results(
    per_shard: Sequence[BatchSearchResult],
    k: int,
    latency_s: float,
) -> BatchSearchResult:
    """Gather a batch's per-shard results, query by query."""
    if not per_shard:
        raise ValueError("at least one shard batch is required")
    num_queries = len(per_shard[0].results)
    if any(len(b.results) != num_queries for b in per_shard):
        raise ValueError("shards returned different batch sizes")
    merged = [
        merge_search_results(
            [batch.results[i] for batch in per_shard],
            k,
            # Per-query latency inside a batch is not individually
            # meaningful (MQO amortizes scans); surface the slowest
            # shard's per-query figure, as a serial caller would see.
            max(
                batch.results[i].stats.latency_s for batch in per_shard
            ),
        )
        for i in range(num_queries)
    ]
    batch_stats = (
        aggregate_query_stats(
            [
                b.stats
                for b in per_shard
                if b.stats is not None
            ],
            latency_s,
        )
        if any(b.stats is not None for b in per_shard)
        else None
    )
    return BatchSearchResult(
        results=merged,
        partitions_scanned=sum(b.partitions_scanned for b in per_shard),
        partitions_requested=sum(
            b.partitions_requested for b in per_shard
        ),
        latency_s=latency_s,
        stats=batch_stats,
    )


def aggregate_query_stats(
    per_shard: Sequence[QueryStats],
    latency_s: float,
    degraded: bool = False,
) -> QueryStats:
    """Fold per-shard execution traces into one scatter-wide trace.

    ``degraded`` forces the aggregate's degraded flag even when every
    *surviving* shard was healthy (the caller dropped a shard).
    """
    if not per_shard:
        raise ValueError("at least one shard stats is required")
    return QueryStats(
        plan=_dominant_plan(per_shard),
        nprobe=max(s.nprobe for s in per_shard),
        partitions_scanned=sum(s.partitions_scanned for s in per_shard),
        vectors_scanned=sum(s.vectors_scanned for s in per_shard),
        distance_computations=sum(
            s.distance_computations for s in per_shard
        ),
        rows_filtered=sum(s.rows_filtered for s in per_shard),
        cache_hits=sum(s.cache_hits for s in per_shard),
        cache_misses=sum(s.cache_misses for s in per_shard),
        bytes_read=sum(s.bytes_read for s in per_shard),
        latency_s=latency_s,
        estimated_selectivity=_uniform_or_none(
            [s.estimated_selectivity for s in per_shard]
        ),
        ivf_selectivity=_uniform_or_none(
            [s.ivf_selectivity for s in per_shard]
        ),
        scan_mode=_uniform_scan_mode(per_shard),
        candidates_reranked=sum(
            s.candidates_reranked for s in per_shard
        ),
        io_time_ms=sum(s.io_time_ms for s in per_shard),
        compute_time_ms=sum(s.compute_time_ms for s in per_shard),
        scan_pipelined=any(s.scan_pipelined for s in per_shard),
        partitions_skipped=sum(s.partitions_skipped for s in per_shard),
        io_shared_hits=sum(s.io_shared_hits for s in per_shard),
        queue_wait_ms=max(s.queue_wait_ms for s in per_shard),
        shards_probed=len(per_shard),
        partitions_quarantined=sum(
            s.partitions_quarantined for s in per_shard
        ),
        degraded=degraded or any(s.degraded for s in per_shard),
    )


def aggregate_index_stats(
    per_shard: Sequence[IndexStats],
) -> IndexStats:
    """Fold per-shard index snapshots into one collection-wide view."""
    if not per_shard:
        raise ValueError("at least one shard stats is required")
    num_partitions = sum(s.num_partitions for s in per_shard)
    indexed = sum(s.indexed_vectors for s in per_shard)
    sized = [s for s in per_shard if s.num_partitions > 0]
    # The aggregated rebuild baseline weights each shard's recorded
    # baseline by its partition count, so partition_growth on the
    # aggregate tracks the same fleet-wide drift the per-shard
    # monitors act on.
    baseline = (
        sum(
            s.baseline_avg_partition_size * s.num_partitions
            for s in sized
        )
        / num_partitions
        if num_partitions > 0
        else 0.0
    )
    code_bytes = max(s.code_bytes_per_vector for s in per_shard)
    return IndexStats(
        total_vectors=sum(s.total_vectors for s in per_shard),
        indexed_vectors=indexed,
        delta_vectors=sum(s.delta_vectors for s in per_shard),
        num_partitions=num_partitions,
        avg_partition_size=(
            indexed / num_partitions if num_partitions > 0 else 0.0
        ),
        max_partition_size=max(
            (s.max_partition_size for s in sized), default=0
        ),
        min_partition_size=min(
            (s.min_partition_size for s in sized), default=0
        ),
        baseline_avg_partition_size=baseline,
        quantization=per_shard[0].quantization,
        quantized_vectors=sum(s.quantized_vectors for s in per_shard),
        code_bytes_per_vector=code_bytes,
        compression_ratio=max(
            s.compression_ratio for s in per_shard
        ),
        # The manifest pins one backend for every shard.
        storage_backend=per_shard[0].storage_backend,
        # The manifest's config applies fleet-wide, so telemetry is
        # only "on" for the collection when every shard records.
        telemetry_enabled=all(s.telemetry_enabled for s in per_shard),
        quarantined_partitions=sum(
            s.quarantined_partitions for s in per_shard
        ),
        events_logged=sum(s.events_logged for s in per_shard),
        slow_queries=sum(s.slow_queries for s in per_shard),
        storage_dead_bytes=sum(
            s.storage_dead_bytes for s in per_shard
        ),
        audited_queries=sum(s.audited_queries for s in per_shard),
        # Count-weighted so a heavily-audited shard dominates the
        # collection-wide recall estimate.
        audit_recall_mean=(
            sum(
                s.audit_recall_mean * s.audited_queries
                for s in per_shard
            )
            / sum(s.audited_queries for s in per_shard)
            if any(s.audited_queries for s in per_shard)
            else 0.0
        ),
        recall_dips=sum(s.recall_dips for s in per_shard),
    )


def aggregate_build_reports(
    per_shard: Sequence[BuildReport], duration_s: float
) -> BuildReport:
    """Fold per-shard build reports (duration is the fan-out's wall)."""
    if not per_shard:
        raise ValueError("at least one shard report is required")
    return BuildReport(
        num_vectors=sum(r.num_vectors for r in per_shard),
        num_partitions=sum(r.num_partitions for r in per_shard),
        iterations=max(r.iterations for r in per_shard),
        minibatch_size=max(r.minibatch_size for r in per_shard),
        row_changes=sum(r.row_changes for r in per_shard),
        duration_s=duration_s,
        # Shards build concurrently, so the fleet's peak is bounded by
        # the sum (all shards at their peak at once) — report that
        # conservative envelope rather than a single shard's peak.
        peak_memory_bytes=sum(r.peak_memory_bytes for r in per_shard),
    )


def aggregate_maintenance_reports(
    per_shard: Sequence[MaintenanceReport], duration_s: float
) -> MaintenanceReport:
    """Fold per-shard maintenance outcomes into one fleet report.

    The aggregate ``action`` is the *heaviest* action any shard took
    (rebuild > flush > none): that is what capacity planning cares
    about, and per-shard reports remain available to callers that fan
    out themselves.
    """
    if not per_shard:
        raise ValueError("at least one shard report is required")
    action = max(
        (r.action for r in per_shard), key=ACTION_SEVERITY.__getitem__
    )
    befores = [r.stats_before for r in per_shard]
    afters = [r.stats_after for r in per_shard]
    return MaintenanceReport(
        action=action,
        vectors_flushed=sum(r.vectors_flushed for r in per_shard),
        centroids_updated=sum(r.centroids_updated for r in per_shard),
        row_changes=sum(r.row_changes for r in per_shard),
        duration_s=duration_s,
        stats_before=(
            aggregate_index_stats(befores)
            if all(s is not None for s in befores)
            else None
        ),
        stats_after=(
            aggregate_index_stats(afters)
            if all(s is not None for s in afters)
            else None
        ),
    )


def _dominant_plan(per_shard: Sequence[QueryStats]) -> PlanKind:
    """The aggregate's plan label when shards may disagree.

    Unfiltered scatters are uniform (every shard runs ANN / EXACT).
    Hybrid queries let each shard's optimizer choose from its *own*
    selectivity estimates, so shards can legitimately split between
    pre- and post-filtering; the aggregate reports the most common
    plan, ties broken toward the earliest shard running it — a
    deterministic label, with the full per-shard truth in
    ``ShardedSearchResult.shard_stats``.
    """
    plans = [s.plan for s in per_shard]
    counts = Counter(plans)
    return max(counts, key=lambda p: (counts[p], -plans.index(p)))


def _uniform_scan_mode(per_shard: Sequence[QueryStats]) -> str:
    modes = {s.scan_mode for s in per_shard}
    if len(modes) == 1:
        return modes.pop()
    # Transiently possible: some shards' quantizers are trained while
    # others still scan float32 (e.g. mid-rolling-build).
    return "mixed"


def _uniform_or_none(values: Sequence[float | None]) -> float | None:
    present = {v for v in values if v is not None}
    if len(present) == 1:
        return present.pop()
    return None
