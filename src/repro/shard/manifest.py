"""On-disk layout and manifest of a sharded database directory.

A sharded deployment is a *directory* (where a single database is a
file) with one manifest plus one SQLite file per shard::

    photos.sharded/
        MANIFEST.json
        shard-0000-of-0004.db
        shard-0001-of-0004.db
        shard-0002-of-0004.db
        shard-0003-of-0004.db

The manifest is the shard map made durable: shard count, router kind,
the exact shard filenames, and a fingerprint of the config fields that
must match across reopen (dim, metric, quantization scheme). Opening
validates all of it before touching any shard, so a renamed shard
file, a manually deleted shard, or an open with the wrong shard count
fails loudly up front instead of silently serving a fraction of the
collection. Shard filenames embed the total count precisely so a
half-finished rebalance (which writes the *new* count's filenames
before swapping the manifest) can never be confused for the live
fleet.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

from repro.core.config import MicroNNConfig
from repro.core.errors import ConfigError, StorageError

#: Manifest filename inside the shard directory.
MANIFEST_NAME = "MANIFEST.json"

#: Manifest schema version (bump on incompatible layout changes).
MANIFEST_VERSION = 1


def shard_filename(index: int, num_shards: int) -> str:
    """Canonical shard filename: embeds index AND total count."""
    return f"shard-{index:04d}-of-{num_shards:04d}.db"


@dataclass(frozen=True)
class ShardManifest:
    """The persisted shard map of one sharded directory."""

    num_shards: int
    router_kind: str
    shard_files: tuple[str, ...]
    dim: int
    metric: str
    quantization: str
    #: Recorded so flag-free tooling (the CLI) can rebuild with the
    #: cluster size the deployment was created with. Informational,
    #: not validated: like the single-database world, a caller may
    #: legitimately open with a different target for the next build.
    target_cluster_size: int = 100
    #: Physical layout every shard file was created with; part of the
    #: config fingerprint (a fleet must never mix layouts, and a
    #: reopen under another backend would fail per-shard validation
    #: anyway — fail once, up front, with the manifest's answer).
    storage_backend: str = "sqlite-row"
    version: int = MANIFEST_VERSION

    @classmethod
    def create(
        cls, num_shards: int, router_kind: str, config: MicroNNConfig
    ) -> "ShardManifest":
        return cls(
            num_shards=num_shards,
            router_kind=router_kind,
            shard_files=tuple(
                shard_filename(i, num_shards) for i in range(num_shards)
            ),
            dim=config.dim,
            metric=config.metric,
            quantization=config.quantization,
            target_cluster_size=config.target_cluster_size,
            storage_backend=config.storage_backend,
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, directory: str | os.PathLike[str]) -> None:
        """Atomically and durably persist into ``directory``.

        This is the commit point of creation and of every rebalance,
        so the write is fsynced before the rename and the directory
        entry fsynced after — a crash leaves either the old manifest
        or the new one, never a truncated file that would make the
        whole fleet unopenable.
        """
        payload = {
            "version": self.version,
            "num_shards": self.num_shards,
            "router_kind": self.router_kind,
            "shard_files": list(self.shard_files),
            "dim": self.dim,
            "metric": self.metric,
            "quantization": self.quantization,
            "target_cluster_size": self.target_cluster_size,
            "storage_backend": self.storage_backend,
        }
        root = os.fspath(directory)
        path = os.path.join(root, MANIFEST_NAME)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        try:
            dir_fd = os.open(root, os.O_RDONLY)
        except OSError:
            return  # e.g. platforms that cannot open directories
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)

    @classmethod
    def load(cls, directory: str | os.PathLike[str]) -> "ShardManifest":
        path = os.path.join(os.fspath(directory), MANIFEST_NAME)
        try:
            with open(path, encoding="utf-8") as fh:
                payload = json.load(fh)
        except FileNotFoundError:
            raise StorageError(
                f"no shard manifest at {path}; not a sharded database "
                "directory"
            ) from None
        except (OSError, json.JSONDecodeError) as exc:
            raise StorageError(
                f"unreadable shard manifest at {path}: {exc}"
            ) from exc
        try:
            version = int(payload["version"])
            if version != MANIFEST_VERSION:
                raise StorageError(
                    f"shard manifest version {version} is not supported "
                    f"(expected {MANIFEST_VERSION})"
                )
            return cls(
                num_shards=int(payload["num_shards"]),
                router_kind=str(payload["router_kind"]),
                shard_files=tuple(
                    str(f) for f in payload["shard_files"]
                ),
                dim=int(payload["dim"]),
                metric=str(payload["metric"]),
                quantization=str(payload["quantization"]),
                target_cluster_size=int(
                    payload.get("target_cluster_size", 100)
                ),
                # Manifests predating the backend abstraction are by
                # definition row-layout fleets.
                storage_backend=str(
                    payload.get("storage_backend", "sqlite-row")
                ),
                version=version,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise StorageError(
                f"malformed shard manifest at {path}: {exc!r}"
            ) from exc

    @staticmethod
    def exists(directory: str | os.PathLike[str]) -> bool:
        return os.path.isfile(
            os.path.join(os.fspath(directory), MANIFEST_NAME)
        )

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def validate(
        self,
        directory: str | os.PathLike[str],
        config: MicroNNConfig,
        expected_shards: int | None,
        router_kind: str,
    ) -> None:
        """Fail fast when the directory cannot serve this open() call.

        Checks, in order of bluntness: shard count (an explicit
        ``shards=`` that disagrees with the manifest), router scheme
        (reopening with a different routing function would scatter
        writes across the wrong shards), config fingerprint
        (dim/metric/quantization must match what the shards were built
        with), and finally the physical files — every manifest-listed
        shard must exist under its exact recorded name, so a missing
        or renamed shard file is detected before any query silently
        drops that shard's rows.
        """
        if self.num_shards != len(self.shard_files):
            raise StorageError(
                f"corrupt shard manifest: num_shards={self.num_shards} "
                f"but {len(self.shard_files)} shard files listed"
            )
        if (
            expected_shards is not None
            and expected_shards != self.num_shards
        ):
            raise ConfigError(
                f"shard count mismatch: open() requested "
                f"{expected_shards} shards but the manifest records "
                f"{self.num_shards}; use rebalance() to change the "
                "shard count"
            )
        if router_kind != self.router_kind:
            raise ConfigError(
                f"router mismatch: open() uses {router_kind!r} but the "
                f"manifest records {self.router_kind!r}"
            )
        mismatches = [
            f"{name}: open()={ours!r} manifest={theirs!r}"
            for name, ours, theirs in (
                ("dim", config.dim, self.dim),
                ("metric", config.metric, self.metric),
                ("quantization", config.quantization, self.quantization),
                (
                    "storage_backend",
                    config.storage_backend,
                    self.storage_backend,
                ),
            )
            if ours != theirs
        ]
        if mismatches:
            raise ConfigError(
                "config does not match the sharded database: "
                + "; ".join(mismatches)
            )
        root = os.fspath(directory)
        missing = [
            name
            for name in self.shard_files
            if not os.path.isfile(os.path.join(root, name))
        ]
        if missing:
            raise StorageError(
                f"shard files missing or renamed under {root}: "
                + ", ".join(missing)
            )
