"""Sharded multi-database engine: scatter-gather over MicroNN shards.

One MicroNN database is bounded by one SQLite writer lock, one
quantizer codebook and one file's I/O path. This package composes N
independent MicroNN databases behind :class:`ShardedMicroNN`, a facade
with the same public API:

- :mod:`repro.shard.router` — stable hash routing of writes
  (:class:`HashRouter`; pluggable);
- :mod:`repro.shard.manifest` — the persisted shard map
  (:class:`ShardManifest`): directory layout, shard count, router
  kind, config fingerprint, validated on reopen;
- :mod:`repro.shard.merge` — the gather stage: global top-k through
  the unsharded ordering contract, plus aggregation of
  query/index/build/maintenance stats;
- :mod:`repro.shard.sharded` — the facade itself, including
  ``rebalance()`` for shard-count changes.

    from repro import MicroNNConfig
    from repro.shard import ShardedMicroNN

    config = MicroNNConfig(dim=128)
    with ShardedMicroNN.open("photos.sharded", config, shards=4) as db:
        db.upsert_batch(records)      # routed by asset-id hash
        db.build_index()              # per-shard builds, in parallel
        hits = db.search(query, k=10)  # scatter-gather, global top-k
"""

from repro.core.config import ShardConfig
from repro.shard.manifest import ShardManifest, shard_filename
from repro.shard.merge import (
    ShardedSearchResult,
    aggregate_index_stats,
    aggregate_query_stats,
    merge_neighbors,
    merge_search_results,
)
from repro.shard.router import HashRouter, Router, make_router
from repro.shard.sharded import RebalanceReport, ShardedMicroNN

__all__ = [
    "ShardedMicroNN",
    "ShardConfig",
    "ShardedSearchResult",
    "RebalanceReport",
    "HashRouter",
    "Router",
    "make_router",
    "ShardManifest",
    "shard_filename",
    "merge_neighbors",
    "merge_search_results",
    "aggregate_query_stats",
    "aggregate_index_stats",
]
