"""Write routing for the sharded engine: asset id -> shard index.

Routing must be a pure, stable function of the asset id: the same id
must land on the same shard in every process, on every platform, for
the lifetime of the deployment — otherwise an upsert could duplicate a
vector onto a second shard and a delete could miss the row entirely.
Python's builtin ``hash()`` is seeded per process (PYTHONHASHSEED), so
the default :class:`HashRouter` hashes with BLAKE2b instead.

Routers are pluggable: anything with a ``kind`` name, a ``num_shards``
count and a ``shard_for(asset_id)`` method works (e.g. a
locality-aware router that co-locates an application's related assets
on one shard). The ``kind`` string is persisted in the shard
directory's manifest so reopening can verify the same scheme is in
use; only the built-in ``"hash"`` kind is reconstructible from the
manifest alone — custom routers must be passed back in by the caller.
"""

from __future__ import annotations

import hashlib
from typing import Protocol, runtime_checkable

from repro.core.errors import ConfigError


@runtime_checkable
class Router(Protocol):
    """The routing contract a :class:`ShardedMicroNN` depends on."""

    #: Scheme name persisted in (and validated against) the manifest.
    kind: str
    #: Number of shards this router spreads ids over.
    num_shards: int

    def shard_for(self, asset_id: str) -> int:
        """Shard index in ``[0, num_shards)`` owning ``asset_id``."""
        ...


class HashRouter:
    """Stable uniform routing by a BLAKE2b hash of the asset id.

    The digest is read as a big-endian 64-bit integer and reduced
    modulo the shard count — platform- and process-independent, and
    uniform enough that shard sizes stay within a few percent of each
    other for realistic id sets (the router tests pin this).
    """

    kind = "hash"

    __slots__ = ("num_shards",)

    def __init__(self, num_shards: int) -> None:
        if num_shards < 1:
            raise ConfigError(
                f"num_shards must be >= 1, got {num_shards}"
            )
        self.num_shards = num_shards

    def shard_for(self, asset_id: str) -> int:
        if self.num_shards == 1:
            return 0
        digest = hashlib.blake2b(
            asset_id.encode("utf-8"), digest_size=8
        ).digest()
        return int.from_bytes(digest, "big") % self.num_shards

    def __repr__(self) -> str:
        return f"HashRouter(num_shards={self.num_shards})"


def make_router(kind: str, num_shards: int) -> Router:
    """Construct a built-in router by its manifest ``kind`` name."""
    if kind == "hash":
        return HashRouter(num_shards)
    raise ConfigError(
        f"unknown router kind {kind!r}; pass the custom router object "
        "to ShardedMicroNN.open(router=...) when reopening"
    )
