"""The sharded multi-database engine: N MicroNN shards, one facade.

A single MicroNN database caps out at one SQLite writer lock, one
quantizer codebook and one storage file's I/O path. A
:class:`ShardedMicroNN` composes ``N`` complete, independent MicroNN
databases (each with its own file, IVF index, quantizer, caches and
serving scheduler) behind the same public API:

- **Writes route.** A stable hash of the asset id
  (:class:`~repro.shard.router.HashRouter`) picks the owning shard, so
  upserts and deletes touch exactly one shard's writer lock and write
  throughput scales with the shard count.
- **Reads scatter-gather.** Every search fans out to all shards
  concurrently — through each shard's own serving scheduler
  (:mod:`repro.serve`) when the fan-out is wide enough to be worth
  scheduler threads, through a serial per-shard loop when it is not —
  and the per-shard top-k streams merge into a global top-k through
  the *same* ``(distance, asset_id)`` ordering contract the unsharded
  executor uses (:mod:`repro.shard.merge`).
- **Maintenance fans out.** ``build_index``/``maintain`` run per shard
  (concurrently) and report aggregates; ``rebalance()`` re-routes
  every row into a new shard count, with the manifest rewrite as the
  atomic commit point.

The shard map (count, router scheme, shard filenames, config
fingerprint) persists in the directory's ``MANIFEST.json``
(:mod:`repro.shard.manifest`); reopening validates it so a missing or
renamed shard file, a wrong shard count, or a mismatched config fails
loudly before any query runs.

Approximation semantics: each shard clusters its own rows, so a
sharded IVF probe set is *per shard* — ``nprobe`` partitions on every
shard. Exhaustive settings (``exact=True``, or ``nprobe`` covering all
partitions) return exactly what a single database over the same rows
returns, neighbor for neighbor; at equal ``nprobe`` a sharded scan
probes more partitions in total and recall is at least as high in
practice, at proportionally higher scan cost.
"""

from __future__ import annotations

import contextlib
import dataclasses
import logging
import os
import re
import shutil
import sqlite3
import tempfile
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import wait as wait_futures
from typing import Callable, Iterable, Mapping

import numpy as np

from repro.core.config import MicroNNConfig, ShardConfig
from repro.core.database import MicroNN, _as_record
from repro.core.errors import (
    ConfigError,
    DatabaseClosedError,
    FilterError,
    StorageError,
)
from repro.core.types import (
    BatchSearchResult,
    BuildReport,
    IndexStats,
    MaintenanceAction,
    MaintenanceReport,
    PlanKind,
    SearchResult,
)
from repro.obs import (
    AuditSummary,
    MetricsSnapshot,
    Recommendation,
    build_recommendations,
    combine_audit_summaries,
    merge_snapshots,
)
from repro.query.filters import Predicate
from repro.shard.manifest import ShardManifest
from repro.shard.merge import (
    ACTION_SEVERITY,
    ShardedSearchResult,
    aggregate_build_reports,
    aggregate_index_stats,
    aggregate_maintenance_reports,
    merge_batch_results,
    merge_search_results,
)
from repro.shard.router import Router, make_router
from repro.storage.engine import ScrubReport, VectorRecord
from repro.storage.iomodel import IOSnapshot
from repro.storage.memory import MemorySnapshot

logger = logging.getLogger(__name__)

#: Shard failures a scatter treats as "this shard is unavailable" —
#: the query degrades to the surviving shards instead of erroring.
#: Anything else (bad k, closed facade, programming errors) still
#: propagates: degraded serving must never mask caller mistakes.
_DEGRADABLE_SHARD_ERRORS = (
    StorageError,
    sqlite3.Error,
    OSError,
    TimeoutError,
)

#: Filename shape of a fleet member (``shard_filename``); the stale-
#: file sweep only ever touches names of this shape, so user files in
#: the directory are never at risk.
_SHARD_FILE_RE = re.compile(
    r"^shard-\d{4}-of-\d{4}\.db(?:-wal|-shm|\.blob\.\d+)?$"
)


def _sweep_stale_shard_files(
    root: str, listed: tuple[str, ...]
) -> list[str]:
    """Delete crash-leftover shard files the manifest does not list.

    A rebalance that crashed between creating the new fleet's files
    and committing the manifest leaves unlisted ``shard-*.db`` files
    (plus WAL/SHM side files, plus the blobfile backend's
    ``.blob.<gen>`` payload files) behind. They are dead weight — the
    manifest is the single source of truth — so reopening sweeps them,
    logging each removal.
    """
    keep: set[str] = set()
    keep_blob_prefixes: tuple[str, ...] = tuple(
        name + ".blob." for name in listed
    )
    for name in listed:
        keep.update((name, name + "-wal", name + "-shm"))
    removed: list[str] = []
    for entry in sorted(os.listdir(root)):
        if entry in keep or not _SHARD_FILE_RE.match(entry):
            continue
        if entry.startswith(keep_blob_prefixes):
            # Blob generations of a listed shard: the shard's own
            # stale-generation sweep owns their lifecycle (the current
            # generation is recorded in its meta table, not here).
            continue
        with contextlib.suppress(OSError):
            os.remove(os.path.join(root, entry))
            removed.append(entry)
    if removed:
        logger.warning(
            "removed stale shard files not listed in the manifest "
            "(crash-leftover from an interrupted rebalance?): %s",
            ", ".join(removed),
        )
    return removed


class _WriteGate:
    """Shared/exclusive gate protecting the facade's shard map.

    Everything that touches the fleet — writes, maintenance, reads —
    enters *shared* and runs concurrently (each shard's engine
    serializes its own writer internally, so per-shard write scaling
    is preserved; readers never block each other). ``rebalance()``
    alone takes *exclusive*: it closes and deletes the old shard
    files, so every other operation must wait out the swap rather
    than race a fleet that is disappearing under it. Exclusive entry
    blocks new shared entrants first, then drains the in-flight ones
    — a steady stream of queries cannot starve a rebalance.
    """

    def __init__(self) -> None:
        self._cv = threading.Condition()
        self._shared = 0
        self._exclusive = False

    def acquire_shared(self) -> None:
        with self._cv:
            while self._exclusive:
                self._cv.wait()
            self._shared += 1

    def release_shared(self) -> None:
        with self._cv:
            self._shared -= 1
            self._cv.notify_all()

    @contextlib.contextmanager
    def shared(self):
        self.acquire_shared()
        try:
            yield
        finally:
            self.release_shared()

    @contextlib.contextmanager
    def exclusive(self):
        with self._cv:
            while self._exclusive:
                self._cv.wait()
            self._exclusive = True
            # New shared entrants now queue behind us; wait for the
            # in-flight ones to drain.
            while self._shared:
                self._cv.wait()
        try:
            yield
        finally:
            with self._cv:
                self._exclusive = False
                self._cv.notify_all()


@dataclasses.dataclass(frozen=True)
class RebalanceReport:
    """Outcome of a shard-count change (:meth:`ShardedMicroNN.rebalance`)."""

    shards_before: int
    shards_after: int
    vectors_moved: int
    #: Whether the new shards were re-indexed after the move (done
    #: whenever the fleet holds any vectors).
    rebuilt: bool
    duration_s: float
    #: Errors raised while tearing down the *old* shards after the
    #: manifest commit. The rebalance itself succeeded (the new fleet
    #: is live and durable); these record cleanup debris — at worst
    #: stale unlisted files — without masking the successful outcome.
    teardown_errors: tuple[str, ...] = ()


class ShardedMicroNN:
    """N per-shard MicroNN databases behind the MicroNN public API."""

    def __init__(
        self,
        path: str | os.PathLike[str] | None,
        config: MicroNNConfig,
        shard_config: ShardConfig | None = None,
        router: Router | None = None,
    ) -> None:
        self._config = config
        self._tempdir: str | None = None
        if path is None:
            self._tempdir = tempfile.mkdtemp(prefix="micronn-shards-")
            path = self._tempdir
        self._path = os.fspath(path)
        requested = shard_config
        router_kind = router.kind if router is not None else (
            (shard_config or ShardConfig()).router
        )

        if ShardManifest.exists(self._path):
            manifest = ShardManifest.load(self._path)
            manifest.validate(
                self._path,
                config,
                requested.num_shards if requested is not None else None,
                router_kind,
            )
            shard_config = dataclasses.replace(
                requested or ShardConfig(),
                num_shards=manifest.num_shards,
                router=manifest.router_kind,
            )
            # Crash hygiene: an interrupted rebalance may have left
            # unlisted shard files; the manifest validated, so they
            # are provably not part of this database.
            swept = _sweep_stale_shard_files(
                self._path, manifest.shard_files
            )
        else:
            swept = []
            shard_config = dataclasses.replace(
                requested or ShardConfig(), router=router_kind
            )
            if router is not None and (
                router.num_shards != shard_config.num_shards
            ):
                raise ConfigError(
                    f"router covers {router.num_shards} shards but "
                    f"config declares {shard_config.num_shards}"
                )
            if os.path.exists(self._path) and not os.path.isdir(
                self._path
            ):
                raise StorageError(
                    f"{self._path} exists and is not a directory — a "
                    "sharded database needs a directory (is this a "
                    "single-database file?)"
                )
            os.makedirs(self._path, exist_ok=True)
            manifest = ShardManifest.create(
                shard_config.num_shards, router_kind, config
            )
            manifest.save(self._path)

        self._shard_config = shard_config
        self._manifest = manifest
        self._router = router or make_router(
            manifest.router_kind, manifest.num_shards
        )
        if self._router.num_shards != manifest.num_shards:
            raise ConfigError(
                f"router covers {self._router.num_shards} shards but "
                f"the manifest records {manifest.num_shards}"
            )
        per_shard = self._per_shard_config(config, manifest.num_shards)
        self._shards: tuple[MicroNN, ...] = _open_fleet(
            self._path, manifest.shard_files, per_shard
        )
        if swept:
            # The sweep ran before any shard existed; shard 0's log is
            # the fleet's designated carrier for facade-level events.
            self._shards[0].engine.events.emit(
                "crash_recovery_sweep",
                files_removed=len(swept),
                files=",".join(swept),
            )
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()
        # Guards facade-level writes and maintenance against
        # rebalance(): a write routed by the old shard map while rows
        # stream to the new fleet would be copied-from-a-stale-
        # snapshot and then deleted with the old files. Writes run
        # concurrently with each other (shared mode — per-shard
        # engines serialize their own writers); rebalance is
        # exclusive, so everyone else simply waits out the move.
        self._write_gate = _WriteGate()
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @classmethod
    def open(
        cls,
        path: str | os.PathLike[str] | None = None,
        config: MicroNNConfig | None = None,
        *,
        shards: int | ShardConfig | None = None,
        router: Router | None = None,
        dim: int | None = None,
        **config_kwargs: object,
    ) -> "ShardedMicroNN":
        """Open (creating if needed) a sharded database directory.

        Mirrors :meth:`MicroNN.open`: pass a full config or ``dim`` +
        keywords. ``shards`` is the shard count (or a full
        :class:`ShardConfig`); omit it when reopening to adopt the
        manifest's count. ``path=None`` creates an ephemeral directory
        removed on close.
        """
        if config is None:
            if dim is None:
                raise FilterError(
                    "open() needs either a config or at least dim=..."
                )
            config = MicroNNConfig(
                dim=dim, **config_kwargs  # type: ignore[arg-type]
            )
        elif dim is not None or config_kwargs:
            raise FilterError(
                "pass either a config object or keyword arguments, "
                "not both"
            )
        if isinstance(shards, int):
            shards = ShardConfig(num_shards=shards)
        return cls(path, config, shard_config=shards, router=router)

    def close(self) -> None:
        """Close every shard; the facade is unusable afterwards.

        Deterministic even under failure: every shard's ``close()``
        (which drains that shard's serving scheduler and joins its
        worker pools) is attempted — a raising shard never strands the
        remaining shards' schedulers — and the first exception is
        re-raised once the whole fleet is down.
        """
        if self._closed:
            return
        self._closed = True
        first_exc: BaseException | None = None
        for shard in self._shards:
            try:
                shard.close()
            except BaseException as exc:
                if first_exc is None:
                    first_exc = exc
        self._shutdown_pool()
        if self._tempdir is not None:
            shutil.rmtree(self._tempdir, ignore_errors=True)
        if first_exc is not None:
            raise first_exc

    def __enter__(self) -> "ShardedMicroNN":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise DatabaseClosedError("sharded database is closed")

    @property
    def config(self) -> MicroNNConfig:
        return self._config

    @property
    def path(self) -> str:
        return self._path

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    @property
    def shards(self) -> tuple[MicroNN, ...]:
        """The per-shard databases (benchmarks introspect them)."""
        return self._shards

    @property
    def router(self) -> Router:
        return self._router

    @property
    def shard_config(self) -> ShardConfig:
        return self._shard_config

    @staticmethod
    def _per_shard_config(
        config: MicroNNConfig, num_shards: int
    ) -> MicroNNConfig:
        """Derive each shard's config from the facade-level one.

        Admission sharing: the serving layer's shared I/O stage width
        is a per-*database* knob, and a scatter query is in flight on
        every shard at once — left alone, N shards would spin up N
        full-width I/O stages for the same device. The resolved width
        is split across shards with a ceiling (every shard keeps at
        least one I/O thread), bounding the fleet's total at the
        single-database budget plus at most ``num_shards - 1`` rounding
        threads — never N full stages. Per-shard admission
        (``max_inflight_queries``) is left intact: a scatter query
        occupies one slot on every shard, which *is* the shared bound
        — S concurrent scatters saturate every shard's admission
        together.
        """
        if num_shards <= 1:
            return config
        total_io = config.resolved_serve_io_threads
        return dataclasses.replace(
            config,
            serve_io_threads=max(
                1, -(-total_io // num_shards)
            ),
        )

    def _gather_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._check_open()
                self._pool = ThreadPoolExecutor(
                    max_workers=max(1, len(self._shards)),
                    thread_name_prefix="micronn-shard-gather",
                )
            return self._pool

    def _shutdown_pool(self) -> None:
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def _map_shards(self, fn, *args_lists):
        """Run ``fn`` once per shard concurrently; results shard-order.

        Serial fallback when only one shard exists (no threads to pay
        for). Every future is waited on — even when one shard fails —
        before the first exception (in shard order) propagates: the
        caller typically holds the write gate in shared mode, and
        releasing it while sibling shard operations are still running
        would let a rebalance delete files under them.
        """
        if len(self._shards) == 1:
            return [fn(self._shards[0], *(a[0] for a in args_lists))]
        pool = self._gather_pool()
        futures = [
            pool.submit(fn, shard, *(a[i] for a in args_lists))
            for i, shard in enumerate(self._shards)
        ]
        wait_futures(futures)
        return [f.result() for f in futures]

    def _use_schedulers(self, num_queries: int) -> bool:
        """Scatter through shard schedulers, or a serial loop?

        The scheduler path pays thread handoffs per shard; it wins
        once the fan-out (shards x concurrent queries) is wide enough
        that overlapping the shards' I/O matters. Both paths return
        bit-identical results (the PR 3 contract; the one carve-out
        is ``adaptive_nprobe_margin``, schedule-dependent on every
        concurrent path).
        """
        return (
            len(self._shards) > 1
            and len(self._shards) * num_queries
            >= self._shard_config.serve_scatter_threshold
        )

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def upsert(
        self,
        asset_id: str,
        vector: np.ndarray,
        attributes: Mapping[str, object] | None = None,
    ) -> None:
        self.upsert_batch(
            [VectorRecord(asset_id, np.asarray(vector), attributes or {})]
        )

    def upsert_batch(
        self, records: Iterable[VectorRecord | tuple]
    ) -> int:
        """Route each record to its owning shard; one write
        transaction per touched shard."""
        self._check_open()
        normalized = [_as_record(r) for r in records]
        # Under the write gate: routing and writing must see one
        # consistent shard map (see rebalance()).
        with self._write_gate.shared():
            by_shard: dict[int, list[VectorRecord]] = {}
            for rec in normalized:
                by_shard.setdefault(
                    self._router.shard_for(rec.asset_id), []
                ).append(rec)
            return sum(
                self._fanout_writes(
                    [
                        (idx, self._shards[idx].upsert_batch, batch)
                        for idx, batch in sorted(by_shard.items())
                    ]
                )
            )

    def delete(self, asset_id: str) -> bool:
        return self.delete_batch([asset_id]) > 0

    def delete_batch(self, asset_ids: Iterable[str]) -> int:
        self._check_open()
        ids = [str(a) for a in asset_ids]
        with self._write_gate.shared():
            by_shard: dict[int, list[str]] = {}
            for asset_id in ids:
                by_shard.setdefault(
                    self._router.shard_for(asset_id), []
                ).append(asset_id)
            return sum(
                self._fanout_writes(
                    [
                        (idx, self._shards[idx].delete_batch, batch)
                        for idx, batch in sorted(by_shard.items())
                    ]
                )
            )

    def _fanout_writes(self, calls) -> list[int]:
        """Run per-shard write calls, concurrently when several shards
        are touched — this is where one bulk caller actually gets the
        N-writer-lock scaling (each shard's engine takes only its own
        lock). A single-shard batch skips the pool. All futures settle
        before the first error (in shard order) propagates, keeping
        the shared write gate honest."""
        if len(calls) <= 1:
            return [fn(batch) for _, fn, batch in calls]
        pool = self._gather_pool()
        futures = [pool.submit(fn, batch) for _, fn, batch in calls]
        wait_futures(futures)
        return [f.result() for f in futures]

    # ------------------------------------------------------------------
    # Reads (point lookups)
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        with self._write_gate.shared():
            return sum(len(shard) for shard in self._shards)

    def __contains__(self, asset_id: str) -> bool:
        with self._write_gate.shared():
            return asset_id in self._shard_of(asset_id)

    def get_vector(self, asset_id: str) -> np.ndarray | None:
        with self._write_gate.shared():
            return self._shard_of(asset_id).get_vector(asset_id)

    def get_attributes(self, asset_id: str) -> dict[str, object] | None:
        with self._write_gate.shared():
            return self._shard_of(asset_id).get_attributes(asset_id)

    def _shard_of(self, asset_id: str) -> MicroNN:
        self._check_open()
        return self._shards[self._router.shard_for(asset_id)]

    # ------------------------------------------------------------------
    # Index lifecycle
    # ------------------------------------------------------------------

    def build_index(self) -> BuildReport:
        """Build every shard's IVF index (concurrently); aggregate."""
        self._check_open()
        start = time.perf_counter()
        with self._write_gate.shared():
            reports = self._map_shards(
                lambda shard: shard.build_index()
            )
        return aggregate_build_reports(
            reports, time.perf_counter() - start
        )

    def maintain(
        self, force: MaintenanceAction | None = None
    ) -> MaintenanceReport:
        """Fan :meth:`MicroNN.maintain` out to every shard.

        Each shard's monitor makes its own recommendation (shards
        drift independently — hash routing spreads *rows* evenly, but
        flush thresholds trip per shard), unless ``force`` overrides
        them all. The report aggregates: heaviest action taken, summed
        flush/row counters, fleet-wide stats snapshots.
        """
        self._check_open()
        start = time.perf_counter()
        with self._write_gate.shared():
            reports = self._map_shards(
                lambda shard: shard.maintain(force=force)
            )
        return aggregate_maintenance_reports(
            reports, time.perf_counter() - start
        )

    def index_stats(self) -> IndexStats:
        self._check_open()
        with self._write_gate.shared():
            return aggregate_index_stats(
                [shard.index_stats() for shard in self._shards]
            )

    def recommended_action(self) -> MaintenanceAction:
        """The heaviest action any shard's monitor recommends."""
        self._check_open()
        return max(
            (shard.recommended_action() for shard in self._shards),
            key=ACTION_SEVERITY.__getitem__,
        )

    def verify(self) -> dict[str, "ScrubReport"]:
        """Checksum-scrub every shard; reports keyed by shard file."""
        self._check_open()
        with self._write_gate.shared():
            reports = self._map_shards(lambda shard: shard.verify())
        return dict(zip(self._manifest.shard_files, reports))

    def repair(self) -> dict[str, "ScrubReport"]:
        """Scrub and repair every shard; reports keyed by shard file."""
        self._check_open()
        with self._write_gate.exclusive():
            reports = self._map_shards(lambda shard: shard.repair())
        return dict(zip(self._manifest.shard_files, reports))

    # ------------------------------------------------------------------
    # Search (scatter-gather)
    # ------------------------------------------------------------------

    def search(
        self,
        query: np.ndarray,
        k: int = 10,
        nprobe: int | None = None,
        filters: Predicate | None = None,
        exact: bool = False,
        plan: PlanKind | None = None,
    ) -> ShardedSearchResult:
        """Scatter the query to every shard, gather the global top-k.

        Same parameters as :meth:`MicroNN.search`. Each shard runs the
        full single-database path (its own optimizer decision for
        hybrid queries, its own quantized scan + exact rerank), so
        exhaustive settings return exactly the single-database result
        over the same rows. ``result.stats`` aggregates shard costs
        (``shards_probed`` = fan-out width); ``result.shard_stats``
        keeps the per-shard attribution.

        **Degraded serving.** A shard that is dead (files removed,
        corrupt beyond open), raising storage/OS errors, or over the
        per-shard timeout (``ShardConfig.shard_timeout_s``) is retried
        up to ``shard_retries`` times with exponential backoff, then
        EXCLUDED: the query returns the exact top-k over the surviving
        shards, with the dead shard named in
        ``result.degraded_shards`` and ``result.stats.degraded`` set.
        Only when every shard fails does the first error propagate.
        Caller mistakes (bad ``k``, closed facade) always raise.
        """
        self._check_open()
        start = time.perf_counter()

        def run(shard: MicroNN) -> SearchResult:
            return shard.search(
                query,
                k=k,
                nprobe=nprobe,
                filters=filters,
                exact=exact,
                plan=plan,
            )

        # Shared gate: a concurrent rebalance() must not close the
        # old fleet while this scatter is reading from it.
        def submit(shard: MicroNN) -> Future:
            return shard.search_async(
                query,
                k=k,
                nprobe=nprobe,
                filters=filters,
                exact=exact,
                plan=plan,
            )

        with self._write_gate.shared():
            if self._use_schedulers(1):
                outcomes = self._gather_scheduled(submit, run)
            else:
                outcomes = [
                    self._run_shard_guarded(run, shard)
                    for shard in self._shards
                ]
        return self._merge_outcomes(outcomes, k, start)

    def _run_shard_guarded(
        self,
        run: Callable[[MicroNN], SearchResult],
        shard: MicroNN,
        attempts_left: int | None = None,
    ) -> tuple[SearchResult | None, BaseException | None]:
        """One shard's search with bounded, backed-off retries.

        Returns ``(result, None)`` on success, ``(None, error)`` once
        the degradable-error budget is exhausted. Non-degradable
        exceptions propagate immediately.
        """
        cfg = self._shard_config
        attempts = (
            cfg.shard_retries + 1
            if attempts_left is None
            else max(1, attempts_left)
        )
        backoff_s = cfg.shard_retry_backoff_ms / 1000.0
        error: BaseException | None = None
        for attempt in range(attempts):
            try:
                return run(shard), None
            except _DEGRADABLE_SHARD_ERRORS as exc:
                error = exc
                if attempt + 1 < attempts and backoff_s > 0:
                    time.sleep(backoff_s * (2**attempt))
        return None, error

    def _gather_scheduled(
        self,
        submit: Callable[[MicroNN], Future],
        run: Callable[[MicroNN], SearchResult],
    ) -> list[tuple[SearchResult | None, BaseException | None]]:
        """Scatter through shard schedulers with timeout + retry.

        Shards run concurrently, so one deadline is the per-shard
        timeout. A shard whose future fails with a degradable error is
        retried serially (its scheduler already failed the query); a
        shard still running at the deadline is marked degraded without
        retry — waiting again would double the latency budget. Its
        in-flight query is left to its own scheduler, which owns it.
        """
        futures = self._scatter_async_guarded(submit)
        timeout = self._shard_config.shard_timeout_s
        wait_futures([f for f, _ in futures], timeout=timeout)
        outcomes: list[
            tuple[SearchResult | None, BaseException | None]
        ] = []
        for future, shard in futures:
            if not future.done():
                outcomes.append(
                    (None, TimeoutError("per-shard timeout exceeded"))
                )
                continue
            exc = future.exception()
            if exc is None:
                outcomes.append((future.result(), None))
            elif isinstance(exc, _DEGRADABLE_SHARD_ERRORS):
                # One scheduler attempt is spent; retry the remainder
                # of the budget serially against the shard.
                outcomes.append(
                    self._run_shard_guarded(
                        run, shard, self._shard_config.shard_retries
                    )
                    if self._shard_config.shard_retries > 0
                    else (None, exc)
                )
            else:
                raise exc
        return outcomes

    def _scatter_async_guarded(
        self, submit: Callable[[MicroNN], Future]
    ) -> list[tuple[Future, MicroNN]]:
        """Submit to every shard's scheduler; a shard whose *submit*
        already fails degradably gets a pre-failed future instead of
        aborting the scatter."""
        out: list[tuple[Future, MicroNN]] = []
        for shard in self._shards:
            try:
                future = submit(shard)
            except _DEGRADABLE_SHARD_ERRORS as exc:
                failed: Future = Future()
                failed.set_exception(exc)
                future = failed
            out.append((future, shard))
        return out

    def _merge_outcomes(
        self,
        outcomes: list[tuple[SearchResult | None, BaseException | None]],
        k: int,
        start: float,
    ) -> ShardedSearchResult:
        results: list[SearchResult] = []
        degraded: list[str] = []
        first_error: BaseException | None = None
        for (result, error), name in zip(
            outcomes, self._manifest.shard_files
        ):
            if error is None and result is not None:
                results.append(result)
            else:
                degraded.append(name)
                if first_error is None:
                    first_error = error
        if not results:
            raise first_error if first_error is not None else StorageError(
                "every shard failed"
            )
        if degraded:
            logger.warning(
                "degraded scatter-gather: excluded shards %s",
                ", ".join(degraded),
            )
            self._emit_degraded(degraded)
        return merge_search_results(
            results,
            k,
            time.perf_counter() - start,
            degraded_shards=degraded,
        )

    def _emit_degraded(self, degraded: list[str]) -> None:
        """Record a degraded scatter on the first *surviving* shard's
        event log (a dead shard's log may be unreachable)."""
        excluded = set(degraded)
        for shard, name in zip(self._shards, self._manifest.shard_files):
            if name not in excluded:
                shard.engine.events.emit(
                    "degraded_shard", shards=",".join(degraded)
                )
                return

    def search_batch(
        self,
        queries: np.ndarray,
        k: int = 10,
        nprobe: int | None = None,
    ) -> BatchSearchResult:
        """Scatter the whole batch to every shard's MQO executor.

        Each shard amortizes partition reads across the batch exactly
        as a single database would (§3.4); the scatter adds the
        cross-shard axis — all shards scan concurrently, each on its
        own I/O path — and the gather merges per query. Falls back to
        a serial per-shard loop when ``shards x queries`` is under the
        scatter threshold.
        """
        self._check_open()
        q = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        start = time.perf_counter()
        with self._write_gate.shared():
            if self._use_schedulers(q.shape[0]):
                batches = self._map_shards(
                    lambda shard: shard.search_batch(
                        q, k=k, nprobe=nprobe
                    )
                )
            else:
                batches = [
                    shard.search_batch(q, k=k, nprobe=nprobe)
                    for shard in self._shards
                ]
        return merge_batch_results(
            batches, k, time.perf_counter() - start
        )

    def _scatter_async(
        self, query, k, nprobe, filters, exact, plan
    ) -> list[Future]:
        """Submit one query to every shard's serving scheduler.

        Input validation happens synchronously in the first shard's
        ``search_async`` (all shards share the config, so one shard's
        verdict is the fleet's). If a later submission fails anyway
        (e.g. a racing close), the already-submitted futures are left
        to complete — their shards' schedulers own them — and the
        error propagates to the caller.
        """
        return [
            shard.search_async(
                query,
                k=k,
                nprobe=nprobe,
                filters=filters,
                exact=exact,
                plan=plan,
            )
            for shard in self._shards
        ]

    def search_async(
        self,
        query: np.ndarray,
        k: int = 10,
        nprobe: int | None = None,
        filters: Predicate | None = None,
        exact: bool = False,
        plan: PlanKind | None = None,
    ) -> Future:
        """Scatter asynchronously; the future resolves to the merged
        :class:`ShardedSearchResult`.

        The scatter goes through every shard's own scheduler (shared
        cross-query I/O coalescing and admission per shard); the
        gather runs as a completion callback on whichever shard
        finishes last, so no thread blocks waiting. A failing shard
        fails the merged future with that shard's exception (earliest
        shard in shard order wins when several fail) once all shards
        have settled — error isolation stays per query, exactly as in
        the single-database scheduler. The facade's write gate is
        held (shared) until the merged future resolves, so a
        concurrent ``rebalance()`` waits for every in-flight async
        query before swapping the fleet.
        """
        self._check_open()
        start = time.perf_counter()
        self._write_gate.acquire_shared()
        try:
            futures = self._scatter_async(
                query, k, nprobe, filters, exact, plan
            )
        except BaseException:
            self._write_gate.release_shared()
            raise
        outer: Future = Future()
        remaining = [len(futures)]
        lock = threading.Lock()

        def on_done(_f: Future) -> None:
            with lock:
                remaining[0] -= 1
                if remaining[0] > 0:
                    return
            # Last shard settled: the gate releases HERE — tied to the
            # shard futures, not the outer future, so a caller
            # cancelling the merged future cannot strip rebalance
            # protection from still-running shard queries.
            try:
                try:
                    results: list[SearchResult] = []
                    degraded: list[str] = []
                    first_error: BaseException | None = None
                    for f, name in zip(
                        futures, self._manifest.shard_files
                    ):
                        exc = f.exception()
                        if exc is None:
                            results.append(f.result())
                        elif isinstance(exc, _DEGRADABLE_SHARD_ERRORS):
                            degraded.append(name)
                            if first_error is None:
                                first_error = exc
                        else:
                            raise exc
                    if not results:
                        raise (
                            first_error
                            if first_error is not None
                            else StorageError("every shard failed")
                        )
                    if degraded:
                        logger.warning(
                            "degraded scatter-gather: excluded "
                            "shards %s",
                            ", ".join(degraded),
                        )
                        self._emit_degraded(degraded)
                    merged = merge_search_results(
                        results,
                        k,
                        time.perf_counter() - start,
                        degraded_shards=degraded,
                    )
                except BaseException as exc:
                    if not outer.done():
                        outer.set_exception(exc)
                    return
                if not outer.done():
                    outer.set_result(merged)
            finally:
                self._write_gate.release_shared()

        for f in futures:
            f.add_done_callback(on_done)
        return outer

    async def search_asyncio(
        self,
        query: np.ndarray,
        k: int = 10,
        nprobe: int | None = None,
        filters: Predicate | None = None,
        exact: bool = False,
        plan: PlanKind | None = None,
    ) -> SearchResult:
        """Awaitable :meth:`search` for asyncio applications."""
        import asyncio

        return await asyncio.wrap_future(
            self.search_async(
                query,
                k=k,
                nprobe=nprobe,
                filters=filters,
                exact=exact,
                plan=plan,
            )
        )

    def serve_session(self):
        """Open a :class:`repro.serve.Session` over the whole fleet.

        Sessions are facade-agnostic — submission goes through
        ``search_async``, so every submitted query scatter-gathers and
        the session's stats aggregate merged (fleet-level) results.
        """
        from repro.serve.session import Session

        self._check_open()
        return Session(self)

    # ------------------------------------------------------------------
    # Rebalancing (shard-count changes)
    # ------------------------------------------------------------------

    def rebalance(self, num_shards: int) -> RebalanceReport:
        """Move every row into a fleet of ``num_shards`` shards.

        The only way to change a deployment's shard count (open()
        refuses a mismatched ``shards=``): streams all rows out of the
        current shards in bounded batches, routes them through a fresh
        router for the new count, builds the new shards' indexes, then
        commits by atomically rewriting the manifest — the moment the
        new manifest is on disk, the new fleet is the database. Old
        shard files are deleted after the commit; a crash in between
        leaves stale (unlisted, ignored) files, never a half-routed
        fleet.

        Concurrency: the facade's write gate is held exclusively for
        the whole move — every other facade operation (writes,
        maintenance, *and* reads) blocks until the swap instead of
        racing a fleet whose files are being deleted. A rebalance is
        a stop-the-world event for this facade; schedule it off-peak.
        In-flight handles on old shard objects are invalid afterwards.
        Old-shard teardown errors *after* the commit do not raise —
        the rebalance succeeded and the report says so — they are
        surfaced in ``RebalanceReport.teardown_errors``.
        """
        self._check_open()
        # Full ShardConfig validation up front: the same count/cap
        # rules open() enforces must fail HERE, before any copying —
        # an out-of-range count discovered at swap time would strand
        # a committed manifest no open() could ever validate.
        new_shard_config = dataclasses.replace(
            self._shard_config, num_shards=num_shards
        )
        if self._router.kind != "hash":
            raise ConfigError(
                "rebalance() supports the built-in hash router only; "
                "re-shard custom-routed deployments manually"
            )
        start = time.perf_counter()
        if num_shards == len(self._shards):
            return RebalanceReport(
                shards_before=num_shards,
                shards_after=num_shards,
                vectors_moved=0,
                rebuilt=False,
                duration_s=time.perf_counter() - start,
            )
        with self._write_gate.exclusive():
            return self._rebalance_locked(
                num_shards, new_shard_config, start
            )

    def _rebalance_locked(
        self,
        num_shards: int,
        new_shard_config: ShardConfig,
        start: float,
    ) -> RebalanceReport:
        new_router = make_router("hash", num_shards)
        new_manifest = ShardManifest.create(
            num_shards, "hash", self._config
        )
        per_shard = self._per_shard_config(self._config, num_shards)
        for name in new_manifest.shard_files:
            _remove_sqlite_files(os.path.join(self._path, name))
        new_shard_list: list[MicroNN] = []
        try:
            for name in new_manifest.shard_files:
                new_shard_list.append(
                    MicroNN(os.path.join(self._path, name), per_shard)
                )
            new_shards = tuple(new_shard_list)
            moved = self._copy_rows_into(new_shards, new_router)
            rebuilt = moved > 0
            if rebuilt:
                # Transient pool sized for the NEW fleet: the shared
                # gather pool is sized for the old count, which would
                # serialize a grow-path rebuild (1 -> 8 shards would
                # build one index at a time inside the exclusive
                # gate). All builds settle before the first error
                # propagates, so the abort path never closes a shard
                # under its own in-flight build.
                with ThreadPoolExecutor(
                    max_workers=max(1, num_shards),
                    thread_name_prefix="micronn-shard-rebuild",
                ) as build_pool:
                    futures = [
                        build_pool.submit(shard.build_index)
                        for shard in new_shards
                    ]
                    wait_futures(futures)
                    for f in futures:
                        f.result()
        except BaseException:
            # Abort: tear the (possibly partial) new fleet down and
            # leave the manifest — and therefore the live database —
            # untouched. Cleanup failures are swallowed: every new
            # shard must be attempted, and the root-cause copy/build/
            # open error is the one the caller needs to see.
            for shard in new_shard_list:
                with contextlib.suppress(BaseException):
                    shard.close()
                _remove_sqlite_files(shard.path)
            raise

        new_manifest.save(self._path)  # the commit point
        old_shards, old_manifest = self._shards, self._manifest
        self._shards = new_shards
        self._manifest = new_manifest
        self._router = new_router
        self._shard_config = new_shard_config
        self._shutdown_pool()  # resized lazily on next use
        teardown_errors: list[str] = []
        for shard, name in zip(old_shards, old_manifest.shard_files):
            try:
                shard.close()
            except BaseException as exc:
                teardown_errors.append(f"{name}: {exc!r}")
            finally:
                _remove_sqlite_files(os.path.join(self._path, name))
        return RebalanceReport(
            shards_before=len(old_shards),
            shards_after=num_shards,
            vectors_moved=moved,
            rebuilt=rebuilt,
            duration_s=time.perf_counter() - start,
            teardown_errors=tuple(teardown_errors),
        )

    def _copy_rows_into(
        self, new_shards: tuple[MicroNN, ...], new_router: Router
    ) -> int:
        """Stream every row to its new shard in bounded batches."""
        has_attrs = bool(self._config.attributes)
        moved = 0
        for old in self._shards:
            engine = old.engine
            for ids, matrix in engine.iter_vector_batches(
                batch_size=2048
            ):
                attrs_by_id = (
                    engine.get_attributes_many(ids) if has_attrs else {}
                )
                by_shard: dict[int, list[VectorRecord]] = {}
                for i, asset_id in enumerate(ids):
                    by_shard.setdefault(
                        new_router.shard_for(asset_id), []
                    ).append(
                        VectorRecord(
                            asset_id,
                            matrix[i],
                            attrs_by_id.get(asset_id, {}),
                        )
                    )
                for idx, batch in sorted(by_shard.items()):
                    moved += new_shards[idx].upsert_batch(batch)
        return moved

    # ------------------------------------------------------------------
    # Statistics, telemetry, cache scenarios
    # ------------------------------------------------------------------

    def refresh_statistics(self) -> None:
        self._check_open()
        with self._write_gate.shared():
            for shard in self._shards:
                shard.refresh_statistics()

    def purge_caches(self) -> None:
        """Cold-start scenario on every shard."""
        self._check_open()
        with self._write_gate.shared():
            for shard in self._shards:
                shard.purge_caches()

    def warm_cache(
        self, queries: np.ndarray, k: int = 10, nprobe: int | None = None
    ) -> None:
        q = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        for row in q:
            self.search(row, k=k, nprobe=nprobe)

    def compact(self) -> int:
        """Compact every shard; returns total bytes reclaimed."""
        self._check_open()
        with self._write_gate.shared():
            return sum(shard.compact() for shard in self._shards)

    def check_integrity(self) -> list[str]:
        """Every shard's integrity problems, prefixed by shard file."""
        self._check_open()
        with self._write_gate.shared():
            problems: list[str] = []
            for shard, name in zip(
                self._shards, self._manifest.shard_files
            ):
                problems.extend(
                    f"{name}: {p}" for p in shard.check_integrity()
                )
            return problems

    def scan_mode(self) -> str:
        """The fleet's scan mode ("mixed" while shards disagree)."""
        self._check_open()
        with self._write_gate.shared():
            modes = {shard.scan_mode() for shard in self._shards}
        return modes.pop() if len(modes) == 1 else "mixed"

    def scan_mode_description(self, k: int = 10) -> str:
        """One-line account of the active scan mode (fleet-uniform
        config, so shard 0 speaks for everyone)."""
        self._check_open()
        return self._shards[0].scan_mode_description(k)

    def memory(self) -> MemorySnapshot:
        """Summed tracked memory across shards."""
        self._check_open()
        with self._write_gate.shared():
            snapshots = [shard.memory() for shard in self._shards]
        by_category: dict[str, int] = {}
        for snap in snapshots:
            for category, nbytes in snap.by_category.items():
                by_category[category] = (
                    by_category.get(category, 0) + nbytes
                )
        return MemorySnapshot(
            current_bytes=sum(s.current_bytes for s in snapshots),
            # Per-shard peaks need not coincide; the sum is the
            # conservative fleet envelope.
            peak_bytes=sum(s.peak_bytes for s in snapshots),
            by_category=by_category,
        )

    def metrics(self) -> MetricsSnapshot:
        """The fleet's merged telemetry snapshot.

        Every sample carries a prepended ``shard="<index>"`` label, so
        per-shard attribution survives the merge (sum over the label
        for fleet totals; the exposition stays valid Prometheus text).
        """
        self._check_open()
        with self._write_gate.shared():
            snapshots = [shard.metrics() for shard in self._shards]
        return merge_snapshots(
            snapshots,
            extra_labels=[
                {"shard": str(i)} for i in range(len(snapshots))
            ],
        )

    def events(
        self, limit: int | None = None, kind: str | None = None
    ) -> tuple:
        """The fleet's newest structured events, merged by timestamp.

        Same contract as :meth:`MicroNN.events`; each shard's ring is
        read and the union is ordered oldest-first before ``limit``
        keeps the newest entries.
        """
        self._check_open()
        with self._write_gate.shared():
            per_shard = self._map_shards(
                lambda shard: shard.events(kind=kind)
            )
        merged = sorted(
            (event for events in per_shard for event in events),
            key=lambda event: event.timestamp,
        )
        if limit is not None:
            merged = merged[-limit:]
        return tuple(merged)

    def audit_summary(self) -> AuditSummary | None:
        """Fleet-wide shadow-audit summary (``None`` if auditing is
        off everywhere)."""
        self._check_open()
        with self._write_gate.shared():
            summaries = [
                s for s in self._map_shards(
                    lambda shard: shard.audit_summary()
                )
                if s is not None
            ]
        if not summaries:
            return None
        return combine_audit_summaries(summaries)

    def advise(self) -> tuple[Recommendation, ...]:
        """Fleet-wide tuning recommendations.

        Per-shard audit summaries fan in shard-labeled (so the
        evidence shows which shard is dragging recall down), stats
        aggregate, and metrics merge; the manifest's config applies to
        every shard, so one recommendation set covers the fleet.
        """
        self._check_open()
        with self._write_gate.shared():
            per_shard = [
                (f"shard{i}", s)
                for i, s in enumerate(
                    self._map_shards(
                        lambda shard: shard.audit_summary()
                    )
                )
                if s is not None
            ]
        summaries = [s for _, s in per_shard]
        audit = (
            combine_audit_summaries(summaries) if summaries else None
        )
        return build_recommendations(
            self._shards[0].config,
            self.index_stats(),
            self.metrics(),
            audit,
            None,
            per_shard_audit=tuple(per_shard),
        )

    def explain(
        self,
        filters: Predicate | None = None,
        nprobe: int | None = None,
        k: int = 10,
    ) -> str:
        """Human-readable account of how a scatter would execute.

        The sharded EXPLAIN analog: the fan-out shape, then one line
        per shard — its scan mode, row count, cumulative bytes read
        and quarantine state — plus, when ``filters`` is given, each
        shard's own optimizer decision (shards estimate selectivity
        from their own statistics, so plans can legitimately differ).
        Nothing is executed.
        """
        self._check_open()
        with self._write_gate.shared():
            num = len(self._shards)
            lines = [
                (
                    f"sharded scatter-gather plan (k={k}, "
                    f"shards={num}, router={self._router.kind})"
                ),
                (
                    "  scatter:  every query fans out to all "
                    f"{num} shard(s); nprobe applies per shard"
                ),
                (
                    "  gather:   per-shard top-k merged by "
                    "(distance, asset_id); serving via "
                    + (
                        "shard schedulers"
                        if self._use_schedulers(1)
                        else "serial per-shard loop"
                    )
                ),
            ]
            for shard, name in zip(
                self._shards, self._manifest.shard_files
            ):
                io = shard.io()
                line = (
                    f"  {name}: scan={shard.scan_mode()}, "
                    f"vectors={len(shard)}, "
                    f"bytes_read={io.bytes_read}"
                )
                quarantined = len(shard.quarantined_partitions)
                if quarantined:
                    line += (
                        f", DEGRADED ({quarantined} partition(s) "
                        "quarantined)"
                    )
                lines.append(line)
                if filters is not None:
                    decision = shard.plan_for(filters, nprobe)
                    lines.append(
                        f"    plan: {decision.kind.value} "
                        "(estimated selectivity "
                        f"{decision.estimated_selectivity:.6f})"
                    )
        return "\n".join(lines)

    def io(self) -> IOSnapshot:
        """Summed cumulative I/O counters across shards."""
        self._check_open()
        with self._write_gate.shared():
            snapshots = [shard.io() for shard in self._shards]
        return IOSnapshot(
            bytes_read=sum(s.bytes_read for s in snapshots),
            read_requests=sum(s.read_requests for s in snapshots),
            cache_hits=sum(s.cache_hits for s in snapshots),
            cache_misses=sum(s.cache_misses for s in snapshots),
            rows_written=sum(s.rows_written for s in snapshots),
            simulated_latency_s=sum(
                s.simulated_latency_s for s in snapshots
            ),
            partitions_quarantined=sum(
                s.partitions_quarantined for s in snapshots
            ),
        )


def _open_fleet(
    root: str, names: tuple[str, ...], config: MicroNNConfig
) -> tuple[MicroNN, ...]:
    """Open every shard, closing the partial fleet if one fails.

    A corrupt or mismatched shard file must not leak the SQLite
    connections of the shards already opened before it.
    """
    shards: list[MicroNN] = []
    try:
        for name in names:
            shards.append(MicroNN(os.path.join(root, name), config))
    except BaseException:
        for shard in shards:
            with contextlib.suppress(BaseException):
                shard.close()
        raise
    return tuple(shards)


def _remove_sqlite_files(path: str) -> None:
    """Remove a database file and its side files.

    Covers SQLite's WAL/SHM files plus any ``.blob.<gen>`` payload
    generations the blobfile backend keeps next to the database.
    """
    for suffix in ("", "-wal", "-shm"):
        try:
            os.remove(path + suffix)
        except FileNotFoundError:
            pass
    base = os.path.basename(path) + ".blob."
    root = os.path.dirname(path) or "."
    try:
        entries = os.listdir(root)
    except OSError:
        return
    for entry in entries:
        if entry.startswith(base):
            with contextlib.suppress(OSError):
                os.remove(os.path.join(root, entry))
