"""MicroNN reproduction — an on-device, disk-resident, updatable vector
database (Pound et al., SIGMOD 2025).

The public API is re-exported here; the typical entry point is
:class:`MicroNN`:

    from repro import MicroNN, MicroNNConfig, Eq

    config = MicroNNConfig(dim=128, attributes={"location": "TEXT"})
    with MicroNN.open("vectors.db", config) as db:
        db.upsert("a1", vector, {"location": "Seattle"})
        db.build_index()
        result = db.search(query, k=10, filters=Eq("location", "Seattle"))

Package layout:

- :mod:`repro.core` — configuration, result types, the MicroNN facade;
- :mod:`repro.storage` — SQLite engine, codec, caches, I/O+memory accounting;
- :mod:`repro.index` — mini-batch balanced k-means, IVF build, delta-store,
  incremental maintenance;
- :mod:`repro.query` — distance kernels, heaps, predicate AST, selectivity
  estimation, hybrid planner, single-query and MQO batch executors;
- :mod:`repro.serve` — the concurrent serving layer: async query
  scheduler with shared cross-query I/O and admission control;
- :mod:`repro.obs` — the observability substrate: metrics registry,
  per-query trace spans (Perfetto-loadable), structured event log;
- :mod:`repro.shard` — the sharded multi-database engine: hash-routed
  writes, scatter-gather search and rebalancing over N shards;
- :mod:`repro.baselines` — the paper's InMemory comparison point;
- :mod:`repro.workloads` — dataset analogs, ground truth, recall metrics,
  the filtered-search workload;
- :mod:`repro.bench` — shared benchmark harness.
"""

from repro.core.config import (
    DeviceProfile,
    IOCostModel,
    MicroNNConfig,
    ShardConfig,
)
from repro.core.database import MicroNN
from repro.core.errors import (
    ConfigError,
    CorruptPartitionError,
    DatabaseClosedError,
    DimensionMismatchError,
    FilterError,
    MicroNNError,
    StorageError,
    UnknownAttributeError,
    WriteConflictError,
)
from repro.core.types import (
    BatchSearchResult,
    BuildReport,
    IndexStats,
    MaintenanceAction,
    MaintenanceReport,
    Neighbor,
    PlanKind,
    QueryStats,
    SearchResult,
)
from repro.obs import (
    Event,
    EventLog,
    MetricsRegistry,
    MetricsSnapshot,
    QueryTrace,
    Span,
    Tracer,
    merge_snapshots,
)
from repro.query.filters import (
    And,
    Between,
    Eq,
    Ge,
    Gt,
    In,
    IsNull,
    Le,
    Lt,
    Match,
    Ne,
    Not,
    Or,
    Predicate,
)
from repro.serve.session import ServeStats, Session
from repro.shard import HashRouter, ShardedMicroNN, ShardedSearchResult
from repro.storage.engine import ScrubReport, VectorRecord
from repro.storage.quantization import SQ8Quantizer

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # facade & config
    "MicroNN",
    "MicroNNConfig",
    "DeviceProfile",
    "IOCostModel",
    "VectorRecord",
    "SQ8Quantizer",
    # serving
    "Session",
    "ServeStats",
    # sharding
    "ShardedMicroNN",
    "ShardConfig",
    "ShardedSearchResult",
    "HashRouter",
    # results
    "Neighbor",
    "SearchResult",
    "BatchSearchResult",
    "QueryStats",
    "PlanKind",
    "IndexStats",
    "BuildReport",
    "MaintenanceAction",
    "MaintenanceReport",
    "ScrubReport",
    # observability
    "MetricsRegistry",
    "MetricsSnapshot",
    "merge_snapshots",
    "Tracer",
    "Span",
    "QueryTrace",
    "Event",
    "EventLog",
    # filters
    "Predicate",
    "Eq",
    "Ne",
    "Lt",
    "Le",
    "Gt",
    "Ge",
    "In",
    "Between",
    "IsNull",
    "Match",
    "And",
    "Or",
    "Not",
    # errors
    "MicroNNError",
    "ConfigError",
    "FilterError",
    "StorageError",
    "CorruptPartitionError",
    "WriteConflictError",
    "DatabaseClosedError",
    "DimensionMismatchError",
    "UnknownAttributeError",
]
