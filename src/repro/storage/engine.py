"""SQLite-backed storage engine.

Implements the paper's physical design (§3.2, §3.6):

- **WAL mode** for ACID semantics with one serialized writer and many
  snapshot-isolated readers. Every thread gets its own reader
  connection; a single writer connection is guarded by a re-entrant
  lock so upserts, deletes and rebuilds are fully serialized.
- **Clustered vector table** keyed ``(partition_id, asset_id,
  vector_id)`` so a partition scan is one sequential range read.
- **Delta-store as a reserved partition** (id ``-1``): newly upserted
  vectors land there and are moved into IVF partitions by maintenance.
- **Row-change accounting**: every write transaction reports the number
  of row inserts/updates/deletes to the I/O accountant — the flash-wear
  metric of Figure 10d.
- **Partition cache**: reads of whole partitions go through a
  byte-budgeted LRU of decoded matrices (the page-cache analog); cold
  start purges it, warm-up queries populate it.
- **Quantized codes** (``quantization="sq8"``/``"pq"``): a parallel
  clustered table of compact scan codes (1 byte per dimension for SQ8,
  1 byte per sub-vector for PQ), with its own LRU, serving the fast
  scan path; float32 blobs stay authoritative for reranking, and the
  codes table is absent entirely in the default float mode.

The engine knows nothing about distances, filters or query plans — it
stores and retrieves rows. Higher layers compose it.
"""

from __future__ import annotations

import contextlib
import logging
import os
import random
import shutil
import sqlite3
import tempfile
import threading
import time
import zlib
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.core.config import DELTA_PARTITION_ID, MicroNNConfig
from repro.core.errors import (
    DatabaseClosedError,
    StorageError,
    UnknownAttributeError,
    WriteConflictError,
)
from repro.storage import schema as schema_mod
from repro.storage.backends import (
    BACKEND_META_KEY,
    PartitionPayload,
    create_backend,
)
from repro.storage.backends.base import (
    CHECKSUM_KIND_CODES,
    CHECKSUM_KIND_VECTORS,
    SQLITE_ROW_OVERHEAD_BYTES,
    payload_checksum,
)
from repro.storage.cache import (
    CODES_CACHE_CATEGORY,
    ROW_ID_OVERHEAD_BYTES,
    CachedPartition,
    DeltaCodesCache,
    PartitionCache,
    ScratchBufferPool,
    ScratchLease,
)
from repro.storage.codec import (
    CODE_DTYPE,
    VECTOR_DTYPE,
    decode_code_matrix,
    decode_code_matrix_into,
    decode_matrix,
    decode_matrix_into,
    decode_vector,
    encode_code_matrix,
    encode_vector,
)
from repro.obs import EventLog, MetricsRegistry, WorkloadMonitor
from repro.storage.iomodel import IOAccountant
from repro.storage.memory import MemoryTracker
from repro.storage.quantization import Quantizer, quantizer_from_json

#: Estimated fixed per-row storage overhead, used for byte accounting.
#: Canonical home is ``repro.storage.backends.base``; re-exported here
#: because the serving scheduler (and older call sites) import it from
#: the engine.
_ROW_OVERHEAD_BYTES = SQLITE_ROW_OVERHEAD_BYTES

logger = logging.getLogger(__name__)

#: Every labeled commit point in the engine, in rough lifecycle order.
#: The fault-injection kill-point sweep iterates this registry so a new
#: write path cannot silently skip crash-safety coverage — add the
#: label here when adding a ``write_transaction(label=...)`` call site.
COMMIT_POINTS: tuple[str, ...] = (
    "upsert",
    "delete",
    "replace_centroids",
    "update_centroids",
    "assign",
    "rebuild_codes",
    "column_stats",
    "repair",
)


#: Meta key persisting the budgeted-scrub round-robin cursor: the last
#: partition id verified by an amortized pass, so the next pass resumes
#: after it instead of re-reading the same prefix every cycle.
SCRUB_CURSOR_META_KEY = "scrub_cursor"


def commit_points_for(backend_kind: str) -> tuple[str, ...]:
    """Every commit point reachable on the given physical layout.

    The blobfile backend adds ``"compact"`` (the locator/generation
    flip of its copy-live-forward compaction); the other layouts never
    emit it, so the kill-point sweep asks here instead of hard-coding
    :data:`COMMIT_POINTS`.
    """
    kind = backend_kind
    if kind.startswith("fault:"):
        kind = kind[len("fault:"):]
    if kind == "blobfile":
        return COMMIT_POINTS + ("compact",)
    return COMMIT_POINTS


@dataclass(frozen=True)
class VectorRecord:
    """One asset to upsert: vector plus optional attribute values."""

    asset_id: str
    vector: np.ndarray
    attributes: Mapping[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class ScrubReport:
    """Outcome of a cold integrity pass over every indexed partition.

    ``repaired_codes``, ``dropped_partitions`` and ``stamped`` are only
    populated by :meth:`StorageEngine.repair`; a plain scrub leaves
    them at their defaults.
    """

    partitions_checked: int
    corrupt_vectors: tuple[int, ...]
    corrupt_codes: tuple[int, ...]
    unstamped: tuple[int, ...]
    quantizer_ok: bool
    repaired_codes: int = 0
    dropped_partitions: tuple[int, ...] = ()
    stamped: int = 0

    @property
    def healthy(self) -> bool:
        return (
            not self.corrupt_vectors
            and not self.corrupt_codes
            and self.quantizer_ok
        )


class StorageEngine:
    """Relational storage for vectors, centroids, attributes and tokens."""

    def __init__(
        self,
        path: str | os.PathLike[str] | None,
        config: MicroNNConfig,
        tracker: MemoryTracker | None = None,
        accountant: IOAccountant | None = None,
        tokenizer: Callable[[str], list[str]] | None = None,
    ) -> None:
        self._config = config
        self._tracker = tracker or MemoryTracker()
        self._accountant = accountant or IOAccountant(config.device.io_model)
        self._tokenizer = tokenizer
        self._closed = False
        self._tempdir: str | None = None
        if path is None:
            self._tempdir = tempfile.mkdtemp(prefix="micronn-")
            path = os.path.join(self._tempdir, "micronn.db")
        self._path = os.fspath(path)

        # The physical layout + connection strategy live behind the
        # backend; the engine adopts its writer lock so a shared-
        # connection backend can serialize reads against writes.
        self._backend = create_backend(
            config.storage_backend, self._path, config
        )
        self._writer_lock = self._backend.writer_lock
        self._serves_views = bool(
            getattr(self._backend, "serves_mmap_views", False)
        )
        self._readers_lock = threading.Lock()
        self._reader_registry: list[sqlite3.Connection] = []
        self._local = threading.local()

        self._writer = self._backend.connect_writer()
        # Refuse a database laid out by a different backend BEFORE any
        # DDL runs, so a mismatched open never pollutes the file.
        self._backend.validate_stored_kind(self._writer)
        self._use_fts5 = bool(
            config.fts_attributes
        ) and schema_mod.fts5_available(self._writer)
        self._use_quantization = config.uses_quantization
        with self._writer:
            schema_mod.create_common_schema(
                self._writer,
                config.normalized_attributes,
                config.fts_attributes,
                self._use_fts5,
            )
            self._backend.create_layout_tables(
                self._writer, self._use_quantization
            )
        self._init_meta()

        # In sq8 mode the device's cache budget is SPLIT between the
        # two LRUs — their sum never exceeds the configured envelope.
        # Codes get the lion's share (a code entry is 4x smaller than
        # its float twin, so 3/4 of the budget holds 3x the partitions
        # a full float budget would); the float cache keeps the rest
        # for the delta partition and code-less fallback loads.
        budget = config.device.partition_cache_bytes
        float_budget = budget // 4 if self._use_quantization else budget
        self.cache = PartitionCache(float_budget, tracker=self._tracker)
        self.codes_cache = PartitionCache(
            budget - float_budget if self._use_quantization else 0,
            tracker=self._tracker,
            category=CODES_CACHE_CATEGORY,
        )
        # Reusable decode buffers for the pipelined scan: partitions the
        # LRU above would never admit (e.g. a zero cache budget) are
        # decoded into pooled scratch memory instead of a fresh
        # allocation per partition per query.
        self.scratch = ScratchBufferPool(
            config.device.scratch_buffer_bytes, tracker=self._tracker
        )
        # Blob width of one stored scan code: dim bytes for sq8, M for
        # pq — the single constant the codes codec paths decode with.
        self._code_width = config.scan_code_width
        # Lazily encoded delta codes (see DeltaCodesCache): populated
        # by the first quantized scan of an over-threshold delta,
        # dropped by every delta write.
        self.delta_codes = DeltaCodesCache(tracker=self._tracker)
        self._quantizer_lock = threading.Lock()
        self._quantizer: Quantizer | None = None
        self._quantizer_loaded = False
        self._centroid_cache: tuple[np.ndarray, np.ndarray] | None = None
        self._centroid_cache_lock = threading.Lock()
        # Simulated OS page cache: partition ids whose pages have been
        # read since the last cold start. Reads of os-cached partitions
        # skip the I/O cost model (the kernel serves them from memory)
        # but are NOT charged to the app's memory tracker — exactly how
        # RSS-vs-page-cache behaves on a real device, and what makes
        # WarmCache fast while app memory stays within budget.
        self._os_cache_lock = threading.Lock()
        self._os_cached_partitions: set[int] = set()
        self._os_cached_code_partitions: set[int] = set()
        self._os_cached_centroids = False
        # In-flight scan guard: partition scans register themselves so
        # purge_caches() can wait for them to finish instead of ripping
        # decoded state out from under a running query. The guard is a
        # counter + condition, not a lock held across a scan, so scans
        # from many threads proceed concurrently.
        self._scan_cv = threading.Condition()
        self._active_scans = 0
        self._purging = False
        # Partitions that failed an integrity check (CRC mismatch or a
        # structurally unreadable payload). A quarantined partition is
        # served as EMPTY — queries degrade (flagged in QueryStats)
        # instead of erroring or silently returning wrong neighbors —
        # until repair() rebuilds or drops it.
        self._quarantine_lock = threading.Lock()
        self._quarantined: set[int] = set()
        self._quantizer_corrupt = False
        # Observability substrate (repro.obs): the engine owns the
        # metrics registry and event log so every layer above — the
        # executors, the scheduler, maintenance, the shard facade —
        # records into one place per database. Disabled instruments
        # collapse to a single attribute check (no lock), keeping the
        # hot paths unconditionally instrumented.
        self.metrics = MetricsRegistry(enabled=config.telemetry_enabled)
        self.events = EventLog(
            capacity=config.event_log_capacity,
            jsonl_path=config.event_log_path,
            enabled=config.telemetry_enabled,
        )
        # Workload heatmap/sketch: same ownership story as the metrics
        # registry — every layer above records into the engine's one
        # monitor. The recall auditor is owned by the database facade
        # (it needs the executor for shadow runs) and attaches itself
        # here so the executor, scheduler, and maintenance can reach
        # it without threading a reference through three constructors.
        self.workload = WorkloadMonitor(
            enabled=config.telemetry_enabled,
            max_partitions=config.workload_heatmap_partitions,
        )
        self.auditor = None
        self._m_loads = self.metrics.counter(
            "micronn_partition_loads_total",
            "Partition loads by payload kind and cache temperature.",
            labels=("backend", "kind", "temperature"),
        )
        self._m_load_bytes = self.metrics.counter(
            "micronn_partition_bytes_read_total",
            "Stored bytes read for cold partition loads.",
            labels=("backend", "kind"),
        )
        self._m_quarantined = self.metrics.counter(
            "micronn_partitions_quarantined_total",
            "Partitions quarantined by integrity-check failures.",
        )
        self._m_maintenance = self.metrics.counter(
            "micronn_maintenance_actions_total",
            "Maintenance/scrub actions performed.",
            labels=("action",),
        )
        gauge = self.metrics.gauge(
            "micronn_cache_bytes",
            "Partition/scratch memory pools: used vs budget.",
            labels=("pool", "stat"),
        )
        gauge.set_fn(lambda: self.cache.used_bytes, pool="float", stat="used")
        gauge.set_fn(
            lambda: self.cache.budget_bytes, pool="float", stat="budget"
        )
        gauge.set_fn(
            lambda: self.codes_cache.used_bytes, pool="codes", stat="used"
        )
        gauge.set_fn(
            lambda: self.codes_cache.budget_bytes,
            pool="codes",
            stat="budget",
        )
        gauge.set_fn(
            lambda: self.scratch.pinned_bytes, pool="scratch", stat="pinned"
        )
        gauge.set_fn(
            lambda: self.scratch.pooled_bytes, pool="scratch", stat="pooled"
        )
        gauge.set_fn(
            lambda: self.scratch.budget_bytes, pool="scratch", stat="budget"
        )
        self.metrics.gauge(
            "micronn_partitions_quarantined",
            "Partitions currently quarantined (cleared by repair).",
        ).set_fn(lambda: float(len(self._quarantined)))
        # Blob-file backend instrumentation: record appends, blob-file
        # compactions, and bytes served zero-copy through the mapping.
        # Exported as a gauge family reading the backend's counters so
        # the hot append/read paths never touch the registry.
        if hasattr(self._backend, "blob_stats"):
            blob_gauge = self.metrics.gauge(
                "micronn_blobfile_stats",
                "Blob-file backend counters: record appends, appended "
                "bytes, compactions, mmap'd bytes served.",
                labels=("stat",),
            )
            for stat in (
                "appends",
                "appended_bytes",
                "compactions",
                "mmap_bytes_served",
            ):
                blob_gauge.set_fn(
                    lambda s=stat: float(
                        self._backend.blob_stats()[s]
                    ),
                    stat=stat,
                )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def path(self) -> str:
        return self._path

    @property
    def config(self) -> MicroNNConfig:
        return self._config

    @property
    def storage_backend(self) -> str:
        """Name of the active physical layout (e.g. ``sqlite-row``)."""
        return self._backend.kind

    @property
    def tracker(self) -> MemoryTracker:
        return self._tracker

    @property
    def accountant(self) -> IOAccountant:
        return self._accountant

    @property
    def uses_fts5(self) -> bool:
        return self._use_fts5

    @property
    def uses_quantization(self) -> bool:
        return self._use_quantization

    def close(self) -> None:
        """Close all connections; further operations raise."""
        if self._closed:
            return
        self._closed = True
        with self._readers_lock:
            for conn in self._reader_registry:
                with contextlib.suppress(sqlite3.Error):
                    self._backend.close_connection(conn)
            self._reader_registry.clear()
        with contextlib.suppress(sqlite3.Error):
            self._backend.close_connection(self._writer)
        self._backend.shutdown()
        self.cache.clear()
        self.codes_cache.clear()
        self.delta_codes.invalidate()
        self.scratch.drain()
        self._drop_centroid_cache()
        self.events.close()
        if self._tempdir is not None:
            shutil.rmtree(self._tempdir, ignore_errors=True)

    @property
    def is_open(self) -> bool:
        return not self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise DatabaseClosedError("database is closed")

    def _reader(self) -> sqlite3.Connection:
        """Thread-local read-only connection (snapshot per transaction)."""
        self._check_open()
        if self._backend.shared_connection:
            return self._writer
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = self._backend.connect_reader()
            self._local.conn = conn
            with self._readers_lock:
                self._reader_registry.append(conn)
        return conn

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------

    def _begin_write(self) -> None:
        """``BEGIN IMMEDIATE`` with bounded, jittered busy retries.

        A transient ``database is locked``/``busy`` error (another
        process holds the write lock, or the fault wrapper injects one)
        is retried up to ``config.busy_retries`` times with exponential
        backoff starting at ``config.busy_backoff_ms``; exhaustion
        raises :class:`WriteConflictError`. Non-lock operational errors
        propagate untouched.
        """
        retries = self._config.busy_retries
        backoff_s = self._config.busy_backoff_ms / 1000.0
        attempt = 0
        while True:
            try:
                self._backend.before_begin_write()
                self._writer.execute("BEGIN IMMEDIATE")
                return
            except sqlite3.OperationalError as exc:
                text = str(exc).lower()
                if "locked" not in text and "busy" not in text:
                    raise
                if attempt >= retries:
                    raise WriteConflictError(
                        "could not acquire the write transaction after "
                        f"{attempt + 1} attempts: {exc}"
                    ) from exc
                delay = backoff_s * (2**attempt)
                if delay > 0:
                    # Jitter desynchronizes contending writers.
                    time.sleep(random.uniform(delay * 0.5, delay))
                attempt += 1

    @contextlib.contextmanager
    def write_transaction(
        self, label: str = "write"
    ) -> Iterator[sqlite3.Connection]:
        """Serialized write transaction with row-change accounting.

        ``label`` names the commit point for the crash-safety hooks
        (:data:`COMMIT_POINTS`): the backend's ``before_commit`` /
        ``after_commit`` are invoked around the commit so a fault-
        injecting backend can crash at exactly this boundary. An
        exception from ``before_commit`` (a pre-commit crash) rolls the
        transaction back; ``after_commit`` runs once the transaction is
        durable, outside the rollback scope.
        """
        self._check_open()
        with self._writer_lock:
            before = self._writer.total_changes
            self._begin_write()
            try:
                yield self._writer
                self._backend.before_commit(label)
            except BaseException:
                self._writer.rollback()
                raise
            else:
                self._writer.commit()
            finally:
                changed = self._writer.total_changes - before
                if changed > 0:
                    self._accountant.record_rows_written(changed)
            self._backend.after_commit(label)

    @contextlib.contextmanager
    def read_snapshot(self) -> Iterator[sqlite3.Connection]:
        """Snapshot-isolated read transaction on this thread's reader.

        Under WAL, a deferred transaction pins the database snapshot at
        its first read; everything inside the ``with`` block sees one
        consistent state even while the writer commits concurrently.

        A shared-connection backend (memory) has no WAL snapshots:
        reads serialize behind the writer lock instead — the lock is
        re-entrant, so same-thread writes inside the block still work.
        """
        if self._backend.shared_connection:
            self._check_open()
            with self._writer_lock:
                yield self._writer
            return
        conn = self._reader()
        conn.execute("BEGIN DEFERRED")
        try:
            yield conn
        finally:
            with contextlib.suppress(sqlite3.Error):
                conn.execute("COMMIT")

    @contextlib.contextmanager
    def _plain_reader(self) -> Iterator[sqlite3.Connection]:
        """A connection for a single autocommit point-read.

        File backends hand out the thread-local reader WITHOUT opening
        a transaction (callers may already hold a snapshot on the same
        connection, where a nested BEGIN would fail); the shared-
        connection backend serializes behind the writer lock.
        """
        if self._backend.shared_connection:
            self._check_open()
            with self._writer_lock:
                yield self._writer
            return
        yield self._reader()

    # ------------------------------------------------------------------
    # Meta
    # ------------------------------------------------------------------

    def _init_meta(self) -> None:
        with self._writer_lock, self._writer:
            cur = self._writer.execute(
                "SELECT value FROM meta WHERE key='schema_version'"
            )
            row = cur.fetchone()
            if row is None:
                self._writer.executemany(
                    "INSERT INTO meta (key, value) VALUES (?, ?)",
                    [
                        ("schema_version", str(schema_mod.SCHEMA_VERSION)),
                        ("dim", str(self._config.dim)),
                        ("metric", self._config.metric),
                        ("next_vector_id", "1"),
                        (BACKEND_META_KEY, self._backend.kind),
                    ],
                )
            else:
                # Databases predating the backend abstraction carry no
                # backend row; stamp the (already validated) kind so
                # detection is explicit from here on.
                self._writer.execute(
                    "INSERT INTO meta (key, value) VALUES (?, ?) "
                    "ON CONFLICT(key) DO NOTHING",
                    (BACKEND_META_KEY, self._backend.kind),
                )
                stored_dim = int(self.get_meta("dim") or 0)
                if stored_dim != self._config.dim:
                    raise StorageError(
                        f"database was created with dim={stored_dim}, "
                        f"config says dim={self._config.dim}"
                    )
                stored_metric = self.get_meta("metric")
                if stored_metric != self._config.metric:
                    raise StorageError(
                        f"database was created with metric={stored_metric!r},"
                        f" config says metric={self._config.metric!r}"
                    )

    def get_meta(self, key: str) -> str | None:
        self._check_open()
        cur = self._writer.execute(
            "SELECT value FROM meta WHERE key=?", (key,)
        )
        row = cur.fetchone()
        return None if row is None else str(row[0])

    def set_meta(self, key: str, value: str) -> None:
        self._check_open()
        with self._writer_lock, self._writer:
            self._writer.execute(
                "INSERT INTO meta (key, value) VALUES (?, ?) "
                "ON CONFLICT(key) DO UPDATE SET value=excluded.value",
                (key, value),
            )

    def _allocate_vector_ids(self, count: int) -> int:
        """Reserve ``count`` consecutive vector ids, return the first."""
        cur = self._writer.execute(
            "SELECT value FROM meta WHERE key='next_vector_id'"
        )
        first = int(cur.fetchone()[0])
        self._writer.execute(
            "UPDATE meta SET value=? WHERE key='next_vector_id'",
            (str(first + count),),
        )
        return first

    # ------------------------------------------------------------------
    # Writes: upsert / delete
    # ------------------------------------------------------------------

    def upsert_batch(self, records: Sequence[VectorRecord]) -> int:
        """Insert or replace assets; new vectors land in the delta-store.

        Returns the number of records written. Upsert semantics: if the
        asset already exists its old vector row (wherever it lives) and
        attribute row are replaced; the fresh vector is staged in the
        delta partition until the next index maintenance (paper §3.6).
        """
        self._check_open()
        if not records:
            return 0
        dim = self._config.dim
        attr_names = list(self._config.normalized_attributes)
        with self.write_transaction("upsert") as conn:
            first_id = self._allocate_vector_ids(len(records))
            # Validate and encode everything first, then hand the
            # backend one batched remove + insert. Duplicate asset ids
            # within a batch resolve last-wins, matching the old
            # per-record delete-then-insert loop.
            staged: dict[str, tuple[VectorRecord, int, bytes]] = {}
            for offset, record in enumerate(records):
                self._validate_attributes(record.attributes)
                blob = encode_vector(record.vector, dim)
                staged[record.asset_id] = (
                    record,
                    first_id + offset,
                    blob,
                )
            ordered = list(staged.values())
            batch_ids = [record.asset_id for record, _, _ in ordered]
            # Replacing an indexed asset shrinks its old partition, so
            # that partition's stored checksum must be restamped in the
            # SAME transaction. Resolve the old homes before the rows
            # move.
            touched = self._backend.partitions_of(conn, batch_ids)
            # Fresh vectors land in the full-precision delta; any
            # stale vector row (wherever it lives) and code row must
            # not survive them.
            self._backend.remove_assets(
                conn,
                batch_ids,
                drop_codes=self._use_quantization,
            )
            self._backend.insert_delta_rows(
                conn,
                [
                    (record.asset_id, vector_id, blob)
                    for record, vector_id, blob in ordered
                ],
            )
            for record, _, _ in ordered:
                self._write_attributes(conn, record, attr_names)
            self._backend.refresh_checksums(
                conn, touched, self._use_quantization
            )
        self.cache.invalidate(DELTA_PARTITION_ID)
        if self._use_quantization:
            # The fresh vectors are in the delta; cached delta codes
            # predate them and must not serve another scan.
            self.delta_codes.invalidate()
        self._invalidate_partitions_of(records)
        return len(records)

    def _invalidate_codes_for(self, asset_ids: Iterable[str]) -> None:
        """Drop cached code partitions containing any of the assets."""
        touched = set(asset_ids)
        for pid in self.codes_cache.cached_partition_ids():
            entry = self.codes_cache.get(pid)
            if entry is not None and touched.intersection(entry.asset_ids):
                self.codes_cache.invalidate(pid)

    def _invalidate_partitions_of(
        self, records: Sequence[VectorRecord]
    ) -> None:
        # After the transaction the rows are already in the delta, so we
        # cannot know the prior partition; invalidate all cached
        # partitions that could contain any of the asset ids by dropping
        # entries containing those ids.
        touched = {r.asset_id for r in records}
        for pid in self.cache.cached_partition_ids():
            entry = self.cache.get(pid)
            if entry is not None and touched.intersection(entry.asset_ids):
                self.cache.invalidate(pid)
        if self._use_quantization:
            self._invalidate_codes_for(touched)

    def _validate_attributes(self, attributes: Mapping[str, object]) -> None:
        declared = self._config.normalized_attributes
        for name in attributes:
            if name not in declared:
                raise UnknownAttributeError(name, tuple(declared))

    def _write_attributes(
        self,
        conn: sqlite3.Connection,
        record: VectorRecord,
        attr_names: list[str],
    ) -> None:
        conn.execute(
            "DELETE FROM attributes WHERE asset_id=?", (record.asset_id,)
        )
        self._delete_tokens(conn, record.asset_id)
        if not attr_names:
            # No declared schema: nothing beyond the vector row.
            return
        columns = ["asset_id"] + [
            schema_mod._quote_ident(n) for n in attr_names
        ]
        placeholders = ", ".join("?" for _ in columns)
        values = [record.asset_id] + [
            record.attributes.get(n) for n in attr_names
        ]
        conn.execute(
            f"INSERT INTO attributes ({', '.join(columns)}) "
            f"VALUES ({placeholders})",
            values,
        )
        self._write_tokens(conn, record)

    def _write_tokens(
        self, conn: sqlite3.Connection, record: VectorRecord
    ) -> None:
        if not self._config.fts_attributes or self._tokenizer is None:
            return
        fts_values: list[object] = []
        rows: list[tuple[str, str, str]] = []
        for name in self._config.fts_attributes:
            text = record.attributes.get(name)
            fts_values.append(text)
            if text is None:
                continue
            for token in set(self._tokenizer(str(text))):
                rows.append((name, token, record.asset_id))
        if rows:
            conn.executemany(
                "INSERT OR IGNORE INTO tokens (attribute, token, asset_id) "
                "VALUES (?, ?, ?)",
                rows,
            )
        if self._use_fts5:
            cols = ", ".join(
                schema_mod._quote_ident(n)
                for n in self._config.fts_attributes
            )
            placeholders = ", ".join(
                "?" for _ in range(len(self._config.fts_attributes) + 1)
            )
            conn.execute(
                f"INSERT INTO attributes_fts (asset_id, {cols}) "
                f"VALUES ({placeholders})",
                [record.asset_id, *fts_values],
            )

    def _delete_tokens(self, conn: sqlite3.Connection, asset_id: str) -> None:
        conn.execute("DELETE FROM tokens WHERE asset_id=?", (asset_id,))
        if self._use_fts5:
            conn.execute(
                "DELETE FROM attributes_fts WHERE asset_id=?", (asset_id,)
            )

    def delete_assets(self, asset_ids: Iterable[str]) -> int:
        """Delete assets (vector, attributes, tokens). Returns count."""
        self._check_open()
        ids = list(asset_ids)
        if not ids:
            return 0
        with self.write_transaction("delete") as conn:
            touched_pids = self._backend.partitions_of(conn, ids)
            deleted = self._backend.remove_assets(
                conn, ids, drop_codes=self._use_quantization
            )
            for asset_id in ids:
                conn.execute(
                    "DELETE FROM attributes WHERE asset_id=?", (asset_id,)
                )
                self._delete_tokens(conn, asset_id)
            self._backend.refresh_checksums(
                conn, touched_pids, self._use_quantization
            )
        # Deleted rows may be cached inside any partition entry.
        touched = set(ids)
        for pid in self.cache.cached_partition_ids():
            entry = self.cache.get(pid)
            if entry is not None and touched.intersection(entry.asset_ids):
                self.cache.invalidate(pid)
        if self._use_quantization:
            self._invalidate_codes_for(touched)
            delta_entry = self.delta_codes.get()
            if delta_entry is not None and touched.intersection(
                delta_entry.asset_ids
            ):
                self.delta_codes.invalidate()
        return deleted

    # ------------------------------------------------------------------
    # Writes: index structures
    # ------------------------------------------------------------------

    def replace_centroids(
        self, centroids: np.ndarray, counts: Sequence[int]
    ) -> None:
        """Replace the whole centroid table after a full (re)build."""
        self._check_open()
        if len(centroids) != len(counts):
            raise StorageError("centroids and counts length mismatch")
        dim = self._config.dim
        with self.write_transaction("replace_centroids") as conn:
            conn.execute("DELETE FROM centroids")
            conn.executemany(
                "INSERT INTO centroids (partition_id, centroid, vector_count)"
                " VALUES (?, ?, ?)",
                [
                    (pid, encode_vector(centroids[pid], dim), int(counts[pid]))
                    for pid in range(len(centroids))
                ],
            )
        self._drop_centroid_cache()

    def update_centroids(
        self, updates: Mapping[int, tuple[np.ndarray, int]]
    ) -> None:
        """Update a subset of centroids (incremental maintenance)."""
        self._check_open()
        if not updates:
            return
        dim = self._config.dim
        with self.write_transaction("update_centroids") as conn:
            conn.executemany(
                "UPDATE centroids SET centroid=?, vector_count=? "
                "WHERE partition_id=?",
                [
                    (encode_vector(vec, dim), int(count), pid)
                    for pid, (vec, count) in updates.items()
                ],
            )
        self._drop_centroid_cache()

    def set_partition_assignments(
        self,
        assignments: Iterable[tuple[str, int]],
        code_rows: Sequence[tuple[int, str, int, bytes]] | None = None,
    ) -> int:
        """Move vectors between partitions: (asset_id, new_partition).

        Each move physically rewrites the row (the partition id is part
        of the clustered primary key), which is exactly the I/O the
        paper's incremental maintenance tries to minimize.

        ``code_rows`` — (partition_id, asset_id, vector_id, blob) SQ8
        codes for the moved vectors — commit in the SAME transaction:
        an incremental flush must never land vectors in a quantized
        partition without their codes, or a crash between two commits
        would leave them invisible to every quantized scan.
        """
        self._check_open()
        moves = list(assignments)
        if not moves:
            return 0
        if code_rows and not self._use_quantization:
            raise StorageError("quantization is not enabled for this database")
        with self.write_transaction("assign") as conn:
            # Both sides of every move need a fresh checksum: the
            # source partition the row leaves and the destination it
            # lands in.
            touched = self._backend.partitions_of(
                conn, [asset_id for asset_id, _ in moves]
            )
            touched.update(pid for _, pid in moves)
            if code_rows:
                touched.update(pid for pid, _, _, _ in code_rows)
            self._backend.apply_assignments(
                conn, moves, code_rows, self._use_quantization
            )
            self._backend.refresh_checksums(
                conn, touched, self._use_quantization
            )
        self.cache.clear()
        self.codes_cache.clear()
        # A flush moves rows OUT of the delta; cached delta codes
        # would resurrect them in their old location.
        self.delta_codes.invalidate()
        return len(moves)

    # ------------------------------------------------------------------
    # Reads: centroids
    # ------------------------------------------------------------------

    def load_centroids(self) -> tuple[np.ndarray, np.ndarray]:
        """Return (partition_ids int64[n], centroid matrix float32[n,d]).

        The centroid table is small (|X| / target_cluster_size rows) and
        hot — it is scanned by every query — so it is cached in memory
        after first load and accounted to the memory tracker. Writers
        drop the cache when centroids change.
        """
        self._check_open()
        with self._centroid_cache_lock:
            if self._centroid_cache is not None:
                return self._centroid_cache
        with self.read_snapshot() as conn:
            rows = conn.execute(
                "SELECT partition_id, centroid FROM centroids "
                "ORDER BY partition_id"
            ).fetchall()
        dim = self._config.dim
        if rows:
            ids = np.array([r[0] for r in rows], dtype=np.int64)
            matrix = decode_matrix([r[1] for r in rows], dim).copy()
        else:
            ids = np.empty(0, dtype=np.int64)
            matrix = np.empty((0, dim), dtype=np.float32)
        nbytes = int(matrix.nbytes) + int(ids.nbytes)
        with self._os_cache_lock:
            charge = not self._os_cached_centroids
            self._os_cached_centroids = True
        self._accountant.record_read(
            nbytes + _ROW_OVERHEAD_BYTES * len(rows), charge_cost=charge
        )
        with self._centroid_cache_lock:
            if self._centroid_cache is None:
                self._centroid_cache = (ids, matrix)
                self._tracker.set_category("centroids", nbytes)
            else:
                # Another reader won the race; hand out its tuple so
                # identity-keyed consumers (the coarse-index cache)
                # converge on one matrix object.
                ids, matrix = self._centroid_cache
        # Return the locally held tuple, never the attribute: a
        # concurrent purge may null the cache between this lock and
        # the return, and callers must still get a coherent snapshot.
        return ids, matrix

    def _drop_centroid_cache(self) -> None:
        with self._centroid_cache_lock:
            self._centroid_cache = None
            self._tracker.set_category("centroids", 0)

    def centroid_count(self) -> int:
        self._check_open()
        with self._plain_reader() as conn:
            cur = conn.execute("SELECT COUNT(*) FROM centroids")
            return int(cur.fetchone()[0])

    # ------------------------------------------------------------------
    # Integrity: checksums and quarantine
    # ------------------------------------------------------------------

    def is_quarantined(self, partition_id: int) -> bool:
        with self._quarantine_lock:
            return partition_id in self._quarantined

    @property
    def quarantined_partitions(self) -> tuple[int, ...]:
        """Sorted ids of partitions currently served as empty."""
        with self._quarantine_lock:
            return tuple(sorted(self._quarantined))

    def _stored_checksum(
        self, conn: sqlite3.Connection, partition_id: int, kind: str
    ) -> int | None:
        row = conn.execute(
            "SELECT crc32 FROM partition_checksums "
            "WHERE partition_id=? AND kind=?",
            (partition_id, kind),
        ).fetchone()
        return None if row is None else int(row[0])

    def _empty_entry(
        self, partition_id: int, dtype: np.dtype = VECTOR_DTYPE
    ) -> CachedPartition:
        width = (
            self._code_width if dtype is CODE_DTYPE else self._config.dim
        )
        return CachedPartition(
            partition_id=partition_id,
            asset_ids=(),
            vector_ids=(),
            matrix=np.empty((0, width), dtype=dtype),
        )

    def _quarantine(
        self,
        partition_id: int,
        detail: str,
        dtype: np.dtype = VECTOR_DTYPE,
    ) -> CachedPartition:
        """Mark a partition corrupt and serve it as empty (degraded)."""
        with self._quarantine_lock:
            fresh = partition_id not in self._quarantined
            self._quarantined.add(partition_id)
        if fresh:
            logger.warning(
                "quarantined partition %d: %s", partition_id, detail
            )
            self._m_quarantined.inc()
            self.events.emit(
                "quarantine", partition_id=partition_id, detail=detail
            )
        self.cache.invalidate(partition_id)
        self.codes_cache.invalidate(partition_id)
        self._accountant.record_quarantined()
        return self._empty_entry(partition_id, dtype)

    # ------------------------------------------------------------------
    # Reads: partitions and vectors
    # ------------------------------------------------------------------

    def _decode_blobs(
        self,
        blobs: list[bytes],
        dtype: np.dtype,
        cache: PartitionCache,
        use_scratch: bool,
        decode: Callable[[list[bytes], int], np.ndarray],
        decode_into: Callable[[list[bytes], int, np.ndarray], np.ndarray],
        width: int,
    ) -> tuple[np.ndarray, ScratchLease | None]:
        """Decode partition blobs, through scratch when never-cacheable.

        ``width`` is the per-row element count: ``dim`` for float32
        partitions and SQ8 codes, ``pq_num_subvectors`` for PQ codes.
        ``use_scratch`` loads that ``cache`` could not admit anyway
        (the admission estimate uses the same per-row constant as
        ``CachedPartition.nbytes``) are decoded into a pooled scratch
        lease, returned alongside the matrix for the caller to release
        after scoring; everything else decodes into a fresh matrix.
        """
        if use_scratch and blobs:
            nbytes = len(blobs) * width * dtype.itemsize
            estimate = nbytes + ROW_ID_OVERHEAD_BYTES * len(blobs)
            if not cache.would_admit(estimate):
                lease = self.scratch.checkout(nbytes)
                try:
                    out = lease.array((len(blobs), width), dtype)
                    return decode_into(blobs, width, out), lease
                except BaseException:
                    lease.release()
                    raise
        return decode(blobs, width), None

    def _materialize(
        self,
        payload: PartitionPayload,
        dtype: np.dtype,
        cache: PartitionCache,
        use_scratch: bool,
        decode: Callable[[list[bytes], int], np.ndarray],
        decode_into: Callable[[list[bytes], int, np.ndarray], np.ndarray],
        width: int,
    ) -> tuple[np.ndarray, ScratchLease | None]:
        """Decode a backend payload — per-row blobs or one packed blob.

        The packed path is a zero-copy reinterpretation of the blob
        (plus one copy into the cacheable/scratch destination), with
        the same scratch-admission rule as the per-row path.
        """
        if payload.packed is None:
            return self._decode_blobs(
                payload.blobs or [],
                dtype,
                cache,
                use_scratch,
                decode,
                decode_into,
                width,
            )
        count = len(payload.asset_ids)
        expected = count * width * dtype.itemsize
        if len(payload.packed) != expected:
            raise StorageError(
                f"packed partition blob holds {len(payload.packed)} "
                f"bytes, expected {expected} ({count} rows of "
                f"{width} x {dtype.itemsize}-byte elements)"
            )
        source = np.frombuffer(payload.packed, dtype=dtype).reshape(
            count, width
        )
        if self._serves_views:
            # Zero-copy path (blobfile): ``packed`` is a read-only
            # view over the backend's mmap, so the reinterpretation
            # above IS the partition matrix — no float/code buffer is
            # materialized and no scratch lease is needed. The mapped
            # bytes stay valid for the life of the view: records are
            # append-only within a generation, and a compaction swap
            # keeps the retired mapping alive until its views die.
            return source, None
        if use_scratch and count:
            nbytes = count * width * dtype.itemsize
            estimate = nbytes + ROW_ID_OVERHEAD_BYTES * count
            if not cache.would_admit(estimate):
                lease = self.scratch.checkout(nbytes)
                try:
                    out = lease.array((count, width), dtype)
                    np.copyto(out, source)
                    return out, lease
                except BaseException:
                    lease.release()
                    raise
        return source.copy(), None

    def load_partition(
        self,
        partition_id: int,
        use_cache: bool = True,
        use_scratch: bool = False,
    ) -> CachedPartition:
        """Load one partition's rows as a decoded matrix (cache-aware).

        With ``use_scratch`` (the pipelined scan), a cache-miss load of
        a partition the LRU would never admit is decoded into a pooled
        scratch buffer; the returned entry carries the lease and the
        caller MUST release it (``entry.lease.release()``) once the
        matrix has been consumed.
        """
        self._check_open()
        if partition_id != DELTA_PARTITION_ID and self.is_quarantined(
            partition_id
        ):
            self._accountant.record_quarantined()
            self.workload.record_quarantine_hit(partition_id)
            return self._empty_entry(partition_id)
        if use_cache:
            cached = self.cache.get(partition_id)
            if cached is not None:
                self._accountant.record_cache_hit()
                self._m_loads.inc(
                    backend=self._backend.kind,
                    kind="vectors",
                    temperature="hot",
                )
                self.workload.record_access(partition_id, 0, hot=True)
                return cached
            self._accountant.record_cache_miss()
        # Cold read: verify the payload against its stored CRC (stamped
        # by every write that touched the partition). The delta is
        # exempt — it is rewritten too often to checksum per upsert and
        # a corrupt delta is a hard error, not a degradable one.
        try:
            with self.read_snapshot() as conn:
                payload = self._backend.read_partition(
                    conn, partition_id
                )
                expected = (
                    self._stored_checksum(
                        conn, partition_id, CHECKSUM_KIND_VECTORS
                    )
                    if partition_id != DELTA_PARTITION_ID
                    else None
                )
        except (StorageError, ValueError) as exc:
            if partition_id == DELTA_PARTITION_ID:
                raise
            return self._quarantine(partition_id, str(exc))
        if expected is not None and payload_checksum(payload) != expected:
            return self._quarantine(
                partition_id, "vector payload checksum mismatch"
            )
        try:
            matrix, lease = self._materialize(
                payload,
                VECTOR_DTYPE,
                self.cache,
                use_scratch,
                decode_matrix,
                decode_matrix_into,
                width=self._config.dim,
            )
        except (StorageError, ValueError) as exc:
            if partition_id == DELTA_PARTITION_ID:
                raise
            return self._quarantine(partition_id, str(exc))
        entry = CachedPartition(
            partition_id=partition_id,
            asset_ids=payload.asset_ids,
            vector_ids=payload.vector_ids,
            matrix=matrix,
            lease=lease,
            stored_bytes=payload.stored_bytes,
        )
        with self._os_cache_lock:
            charge = partition_id not in self._os_cached_partitions
            self._os_cached_partitions.add(partition_id)
        self._accountant.record_read(
            payload.stored_bytes, charge_cost=charge
        )
        self._m_loads.inc(
            backend=self._backend.kind, kind="vectors", temperature="cold"
        )
        self._m_load_bytes.inc(
            payload.stored_bytes, backend=self._backend.kind, kind="vectors"
        )
        self.workload.record_access(
            partition_id, payload.stored_bytes, hot=False
        )
        if use_cache and lease is None:
            self.cache.put(entry)
        return entry

    def fetch_vectors_by_asset_ids(
        self, asset_ids: Sequence[str], chunk_size: int = 500
    ) -> tuple[list[str], np.ndarray]:
        """Point-fetch vectors for specific assets (pre-filtering plan).

        Returns (found_asset_ids, matrix); assets with no stored vector
        are silently skipped. Reads are chunked to respect SQLite's
        bound-parameter limit.
        """
        self._check_open()
        if self._config.verify_point_reads:
            return self._fetch_vectors_verified(asset_ids, chunk_size)
        with self.read_snapshot() as conn:
            found, blobs, stored = self._backend.fetch_vector_blobs(
                conn, asset_ids, chunk_size
            )
        matrix = decode_matrix(blobs, self._config.dim)
        self._accountant.record_read(stored)
        return found, matrix

    def _fetch_vectors_verified(
        self, asset_ids: Sequence[str], chunk_size: int
    ) -> tuple[list[str], np.ndarray]:
        """Point-fetch through the CRC-verified partition-load path.

        ``verify_point_reads``: instead of slicing rows straight out of
        storage, resolve each asset's partition and read it through
        :meth:`load_partition` — which verifies the stored checksum on
        cold loads and serves quarantined partitions as empty. Rerank
        reads then carry the same degraded-never-wrong guarantee as
        scans. Order contract preserved: each request chunk contributes
        its found assets in ascending ``asset_id`` order.
        """
        found: list[str] = []
        rows: list[np.ndarray] = []
        for start in range(0, len(asset_ids), chunk_size):
            chunk = list(asset_ids[start : start + chunk_size])
            by_partition: dict[int, list[str]] = {}
            with self._plain_reader() as conn:
                for aid in chunk:
                    pid = self._backend.get_partition_of(conn, aid)
                    if pid is not None:
                        by_partition.setdefault(int(pid), []).append(aid)
            chunk_rows: dict[str, np.ndarray] = {}
            for pid in sorted(by_partition):
                entry = self.load_partition(pid)
                index = {a: i for i, a in enumerate(entry.asset_ids)}
                for aid in by_partition[pid]:
                    row = index.get(aid)
                    if row is not None:
                        chunk_rows[aid] = entry.matrix[row]
            for aid in sorted(chunk_rows):
                found.append(aid)
                rows.append(chunk_rows[aid])
        if not rows:
            return found, np.empty(
                (0, self._config.dim), dtype=VECTOR_DTYPE
            )
        return found, np.array(rows, dtype=VECTOR_DTYPE)

    def get_vector(self, asset_id: str) -> np.ndarray | None:
        """Return one asset's vector, or None if absent."""
        self._check_open()
        if self._config.verify_point_reads:
            with self._plain_reader() as conn:
                pid = self._backend.get_partition_of(conn, asset_id)
            if pid is None:
                return None
            entry = self.load_partition(int(pid))
            try:
                row = entry.asset_ids.index(asset_id)
            except ValueError:
                return None
            return entry.matrix[row].copy()
        with self._plain_reader() as conn:
            blob = self._backend.get_vector_blob(conn, asset_id)
        if blob is None:
            return None
        return decode_vector(blob, self._config.dim)

    def get_partition_of(self, asset_id: str) -> int | None:
        self._check_open()
        with self._plain_reader() as conn:
            return self._backend.get_partition_of(conn, asset_id)

    def iter_vector_batches(
        self, batch_size: int = 4096, include_delta: bool = True
    ) -> Iterator[tuple[list[str], np.ndarray]]:
        """Stream all vectors in bounded batches (exact KNN, rebuilds).

        Never materializes the full collection: this is the memory
        discipline that lets index construction run in a mini-batch
        footprint.
        """
        self._check_open()
        if batch_size < 1:
            raise StorageError("batch_size must be >= 1")
        with self.read_snapshot() as conn:
            for ids, blobs, stored in self._backend.iter_row_batches(
                conn, include_delta, batch_size
            ):
                matrix = decode_matrix(blobs, self._config.dim)
                self._accountant.record_read(stored)
                yield ids, matrix

    def all_asset_ids(self) -> list[str]:
        """All asset ids (ids only — a few bytes per vector)."""
        self._check_open()
        with self.read_snapshot() as conn:
            return self._backend.all_asset_ids(conn)

    def count_vectors(self, include_delta: bool = True) -> int:
        self._check_open()
        with self._plain_reader() as conn:
            return self._backend.count_vectors(conn, include_delta)

    def delta_size(self) -> int:
        self._check_open()
        with self._plain_reader() as conn:
            return self._backend.delta_size(conn)

    def partition_sizes(self, include_delta: bool = False) -> dict[int, int]:
        """Map of partition id to row count (index monitor input)."""
        self._check_open()
        with self.read_snapshot() as conn:
            return self._backend.partition_sizes(conn, include_delta)

    # ------------------------------------------------------------------
    # Quantized codes (sq8 / pq)
    # ------------------------------------------------------------------

    #: meta-table key holding the serialized trained SQ8 quantizer.
    QUANTIZER_META_KEY = "sq8_quantizer"
    #: meta-table key holding the serialized trained PQ quantizer.
    PQ_QUANTIZER_META_KEY = "pq_quantizer"

    @property
    def quantizer_meta_key(self) -> str:
        """The meta key of the configured scheme's trained quantizer.

        Kind-specific keys (plus :meth:`rebuild_codes` dropping the
        other kind's row) make mode switches safe: a database built
        under sq8 and reopened with ``quantization="pq"`` simply has no
        trained PQ quantizer yet and falls back to float32 scans until
        the next build retrains — it can never mis-parse the other
        scheme's payload or scan codes of the wrong width.
        """
        if self._config.quantization == "pq":
            return self.PQ_QUANTIZER_META_KEY
        return self.QUANTIZER_META_KEY

    def load_quantizer(self) -> Quantizer | None:
        """The trained quantizer, or None before the first build.

        Cached in memory; :meth:`rebuild_codes` refreshes the cache
        when it persists a retrained quantizer, so readers never
        re-parse the meta row on the hot path.
        """
        self._check_open()
        if not self._use_quantization:
            return None
        with self._quantizer_lock:
            if self._quantizer_loaded:
                return self._quantizer
        payload = self.get_meta(self.quantizer_meta_key)
        quantizer: Quantizer | None = None
        if payload is not None:
            stored_crc = self.get_meta(self.quantizer_meta_key + "_crc32")
            crc_ok = stored_crc is None or int(stored_crc) == zlib.crc32(
                payload.encode("utf-8")
            )
            if not crc_ok:
                self._quantizer_corrupt = True
                logger.warning(
                    "stored quantizer failed its checksum; serving "
                    "float32 scans until repair() or the next build"
                )
            else:
                try:
                    quantizer = quantizer_from_json(payload)
                except (ValueError, KeyError, TypeError) as exc:
                    # Only reachable on legacy rows with no CRC to
                    # catch the corruption first.
                    self._quantizer_corrupt = True
                    logger.warning(
                        "stored quantizer failed to parse (%s); "
                        "serving float32 scans until repair() or the "
                        "next build",
                        exc,
                    )
        if (
            quantizer is not None
            and quantizer.kind != self._config.quantization
        ):
            raise StorageError(
                f"persisted quantizer kind {quantizer.kind!r} does not "
                f"match configured quantization "
                f"{self._config.quantization!r}"
            )
        with self._quantizer_lock:
            self._quantizer = quantizer
            self._quantizer_loaded = True
        return quantizer

    def load_partition_codes(
        self,
        partition_id: int,
        use_cache: bool = True,
        use_scratch: bool = False,
    ) -> CachedPartition:
        """Load one partition's scan codes as a decoded uint8 matrix.

        This is the fast scan path's read: same clustered range scan as
        :meth:`load_partition` at a fraction of the bytes (1/4 for SQ8,
        ``M / (4 * dim)`` for PQ). Returns an
        empty entry when the partition has no code rows (e.g. mid-build
        or for a database created before quantization was enabled);
        callers fall back to the float32 scan for that partition.
        ``use_scratch`` behaves as in :meth:`load_partition`.
        """
        self._check_open()
        if not self._use_quantization:
            raise StorageError("quantization is not enabled for this database")
        if partition_id != DELTA_PARTITION_ID and self.is_quarantined(
            partition_id
        ):
            self._accountant.record_quarantined()
            self.workload.record_quarantine_hit(partition_id)
            return self._empty_entry(partition_id, CODE_DTYPE)
        if use_cache:
            cached = self.codes_cache.get(partition_id)
            if cached is not None:
                self._accountant.record_cache_hit()
                self._m_loads.inc(
                    backend=self._backend.kind,
                    kind="codes",
                    temperature="hot",
                )
                self.workload.record_access(partition_id, 0, hot=True)
                return cached
            self._accountant.record_cache_miss()
        try:
            with self.read_snapshot() as conn:
                payload = self._backend.read_partition_codes(
                    conn, partition_id
                )
                expected = (
                    self._stored_checksum(
                        conn, partition_id, CHECKSUM_KIND_CODES
                    )
                    if partition_id != DELTA_PARTITION_ID
                    else None
                )
        except (StorageError, ValueError) as exc:
            if partition_id == DELTA_PARTITION_ID:
                raise
            return self._quarantine(partition_id, str(exc), CODE_DTYPE)
        if expected is not None and payload_checksum(payload) != expected:
            return self._quarantine(
                partition_id,
                "code payload checksum mismatch",
                CODE_DTYPE,
            )
        try:
            matrix, lease = self._materialize(
                payload,
                CODE_DTYPE,
                self.codes_cache,
                use_scratch,
                decode_code_matrix,
                decode_code_matrix_into,
                width=self._code_width,
            )
        except (StorageError, ValueError) as exc:
            if partition_id == DELTA_PARTITION_ID:
                raise
            return self._quarantine(partition_id, str(exc), CODE_DTYPE)
        entry = CachedPartition(
            partition_id=partition_id,
            asset_ids=payload.asset_ids,
            vector_ids=payload.vector_ids,
            matrix=matrix,
            lease=lease,
            stored_bytes=payload.stored_bytes,
        )
        with self._os_cache_lock:
            charge = partition_id not in self._os_cached_code_partitions
            self._os_cached_code_partitions.add(partition_id)
        self._accountant.record_read(
            payload.stored_bytes, charge_cost=charge
        )
        self._m_loads.inc(
            backend=self._backend.kind, kind="codes", temperature="cold"
        )
        self._m_load_bytes.inc(
            payload.stored_bytes, backend=self._backend.kind, kind="codes"
        )
        self.workload.record_access(
            partition_id, payload.stored_bytes, hot=False
        )
        if use_cache and lease is None:
            self.codes_cache.put(entry)
        return entry

    def load_scan_entry(
        self,
        partition_id: int,
        quantized: bool,
        use_scratch: bool = False,
    ) -> tuple[CachedPartition, bool]:
        """One partition read for an ANN scan: (entry, is_codes).

        THE single definition of the scan-path load rule: quantized
        scans read code partitions, except code-less partitions
        (mid-build, or data predating quantization), which fall back
        to the float32 read. The delta is full-precision on disk and
        normally scanned exactly; once it outgrows
        ``delta_quantize_threshold`` it is lazily encoded in memory
        (:meth:`_delta_codes_entry`) and scanned as codes like any
        other coded partition. Both executors and the pipeline's
        coldness heuristic
        (:func:`repro.query.pipeline.has_cold_partition`) must track
        this rule — keep them in sync when it changes.
        """
        if quantized and partition_id == DELTA_PARTITION_ID:
            entry = self._delta_codes_entry()
            if entry is not None and len(entry):
                return entry, True
        elif quantized:
            entry = self.load_partition_codes(
                partition_id, use_scratch=use_scratch
            )
            if len(entry):
                return entry, True
            # A quarantined partition already reported itself as empty;
            # the float fallback would re-count the same quarantine.
            if partition_id != DELTA_PARTITION_ID and self.is_quarantined(
                partition_id
            ):
                return entry, False
        return (
            self.load_partition(partition_id, use_scratch=use_scratch),
            False,
        )

    def _delta_codes_entry(self) -> CachedPartition | None:
        """Lazily encoded delta codes, or None to scan exactly.

        The quantized-delta rule (ROADMAP "quantized delta" item): the
        delta stays full-precision on disk so upserts remain one row
        write, but once it holds ``delta_quantize_threshold`` vectors
        a quantized scan encodes it ONCE with the active quantizer and
        caches the codes in memory — heavy-upsert workloads then stop
        paying a growing exact float32 scan on every query. Any delta
        write (or purge, or quantizer retrain) invalidates the entry.
        The first scan past the threshold still reads the float32
        delta (that read is accounted normally); every later scan is
        served from memory at zero bytes.
        """
        threshold = self._config.delta_quantize_threshold
        if threshold is None:
            return None
        cached = self.delta_codes.get()
        if cached is not None:
            self._accountant.record_cache_hit()
            return cached
        quantizer = self.load_quantizer()
        if quantizer is None:
            return None
        # Generation first, THEN the snapshot read: a delta write
        # committing between the two bumps the generation, so the
        # (pre-write) entry below is rejected by put() instead of
        # masking the fresh vector from every later scan. This scan
        # still uses the entry — it matches the snapshot it read.
        generation = self.delta_codes.generation()
        if self.delta_size() < threshold:
            return None
        source = self.load_partition(DELTA_PARTITION_ID)
        if len(source) == 0:
            return None
        entry = CachedPartition(
            partition_id=DELTA_PARTITION_ID,
            asset_ids=source.asset_ids,
            vector_ids=source.vector_ids,
            matrix=quantizer.encode(source.matrix),
        )
        self.delta_codes.put(entry, generation)
        return entry

    def rebuild_codes(
        self, quantizer: Quantizer, batch_size: int = 4096
    ) -> int:
        """Persist ``quantizer`` and re-encode every indexed vector.

        Runs after a full index build (or a drift-triggered retrain):
        all existing codes are dropped and the non-delta vectors are
        streamed through the quantizer in bounded batches, so peak
        memory stays at one batch. The quantizer's meta row commits in
        the SAME transaction as the codes — they are one unit; a crash
        can never pair new codes with an old quantizer or vice versa
        (the other scheme's stale meta row is dropped there too, so a
        later mode switch can never decode codes at the wrong width).
        Returns the number of codes written.
        """
        self._check_open()
        if not self._use_quantization:
            raise StorageError("quantization is not enabled for this database")
        if quantizer.kind != self._config.quantization:
            raise StorageError(
                f"quantizer kind {quantizer.kind!r} does not match "
                f"configured quantization {self._config.quantization!r}"
            )
        if quantizer.dim != self._config.dim:
            raise StorageError(
                f"quantizer has dim={quantizer.dim}, "
                f"database dim={self._config.dim}"
            )
        dim = self._config.dim

        def encode_blobs(blobs: list[bytes]) -> list[bytes]:
            matrix = decode_matrix(blobs, dim)
            return encode_code_matrix(quantizer.encode(matrix))

        with self.write_transaction("rebuild_codes") as conn:
            quantizer_json = quantizer.to_json()
            conn.executemany(
                "INSERT INTO meta (key, value) VALUES (?, ?) "
                "ON CONFLICT(key) DO UPDATE SET value=excluded.value",
                [
                    (self.quantizer_meta_key, quantizer_json),
                    (
                        self.quantizer_meta_key + "_crc32",
                        str(zlib.crc32(quantizer_json.encode("utf-8"))),
                    ),
                ],
            )
            for stale_key in (
                self.QUANTIZER_META_KEY,
                self.PQ_QUANTIZER_META_KEY,
            ):
                if stale_key != self.quantizer_meta_key:
                    conn.execute(
                        "DELETE FROM meta WHERE key IN (?, ?)",
                        (stale_key, stale_key + "_crc32"),
                    )
            written = self._backend.rewrite_codes(
                conn, encode_blobs, batch_size
            )
            self._backend.refresh_checksums(
                conn, None, True, kinds=(CHECKSUM_KIND_CODES,)
            )
        with self._quantizer_lock:
            self._quantizer = quantizer
            self._quantizer_loaded = True
        self._quantizer_corrupt = False
        self.codes_cache.clear()
        # Cached delta codes were encoded under the replaced quantizer.
        self.delta_codes.invalidate()
        return written

    def count_codes(self) -> int:
        """Number of vectors with a stored quantized code row."""
        self._check_open()
        if not self._use_quantization:
            return 0
        with self._plain_reader() as conn:
            return self._backend.count_codes(conn)

    # ------------------------------------------------------------------
    # Reads: attributes
    # ------------------------------------------------------------------

    def query_attribute_ids(
        self, where_sql: str, params: Sequence[object]
    ) -> list[str]:
        """Asset ids whose attributes satisfy a compiled predicate."""
        self._check_open()
        with self.read_snapshot() as conn:
            rows = conn.execute(
                f"SELECT asset_id FROM attributes WHERE {where_sql}",
                list(params),
            ).fetchall()
        self._accountant.record_read(_ROW_OVERHEAD_BYTES * len(rows))
        return [r[0] for r in rows]

    def count_attribute_rows(
        self, where_sql: str | None = None, params: Sequence[object] = ()
    ) -> int:
        self._check_open()
        sql = "SELECT COUNT(*) FROM attributes"
        if where_sql:
            sql += f" WHERE {where_sql}"
        with self._plain_reader() as conn:
            cur = conn.execute(sql, list(params))
            return int(cur.fetchone()[0])

    def get_attributes(self, asset_id: str) -> dict[str, object] | None:
        """Return one asset's attribute values, or None if absent."""
        self._check_open()
        names = list(self._config.normalized_attributes)
        if not names:
            return None
        cols = ", ".join(schema_mod._quote_ident(n) for n in names)
        with self._plain_reader() as conn:
            cur = conn.execute(
                f"SELECT {cols} FROM attributes WHERE asset_id=?",
                (asset_id,),
            )
            row = cur.fetchone()
        if row is None:
            return None
        return dict(zip(names, row))

    def get_attributes_many(
        self, asset_ids: Sequence[str]
    ) -> dict[str, dict[str, object]]:
        """Attribute values for many assets in one query per chunk.

        The bulk twin of :meth:`get_attributes` (used by the sharded
        engine's rebalance row stream, where a per-row point query
        would dominate the copy): one ``IN (...)`` select per 512-id
        chunk, missing assets simply absent from the result.
        """
        self._check_open()
        names = list(self._config.normalized_attributes)
        if not names:
            return {}
        cols = ", ".join(schema_mod._quote_ident(n) for n in names)
        out: dict[str, dict[str, object]] = {}
        ids = [str(a) for a in asset_ids]
        # Plain reader (no read_snapshot): callers stream this while
        # iter_vector_batches already holds a snapshot on the same
        # thread-local connection, and autocommit reads compose with
        # an open transaction where a nested BEGIN would not.
        with self._plain_reader() as conn:
            for lo in range(0, len(ids), 512):
                chunk = ids[lo : lo + 512]
                placeholders = ", ".join("?" * len(chunk))
                rows = conn.execute(
                    f"SELECT asset_id, {cols} FROM attributes "
                    f"WHERE asset_id IN ({placeholders})",
                    chunk,
                ).fetchall()
                for row in rows:
                    out[row[0]] = dict(zip(names, row[1:]))
        return out

    def token_document_frequency(self, attribute: str, token: str) -> int:
        """Number of assets whose attribute contains the token (MATCH df)."""
        self._check_open()
        with self._plain_reader() as conn:
            cur = conn.execute(
                "SELECT COUNT(*) FROM tokens WHERE attribute=? AND token=?",
                (attribute, token),
            )
            return int(cur.fetchone()[0])

    # ------------------------------------------------------------------
    # Statistics persistence (selectivity module reads/writes these)
    # ------------------------------------------------------------------

    def save_column_stats(self, attribute: str, payload: str) -> None:
        self._check_open()
        with self.write_transaction("column_stats") as conn:
            conn.execute(
                "INSERT INTO column_stats (attribute, payload) "
                "VALUES (?, ?) ON CONFLICT(attribute) "
                "DO UPDATE SET payload=excluded.payload",
                (attribute, payload),
            )

    def load_column_stats(self, attribute: str) -> str | None:
        self._check_open()
        with self._plain_reader() as conn:
            cur = conn.execute(
                "SELECT payload FROM column_stats WHERE attribute=?",
                (attribute,),
            )
            row = cur.fetchone()
        return None if row is None else str(row[0])

    def load_all_column_stats(self) -> dict[str, str]:
        self._check_open()
        with self.read_snapshot() as conn:
            rows = conn.execute(
                "SELECT attribute, payload FROM column_stats"
            ).fetchall()
        return {str(a): str(p) for a, p in rows}

    # ------------------------------------------------------------------
    # Cache scenarios (§4.1.4)
    # ------------------------------------------------------------------

    @contextlib.contextmanager
    def scan_session(self) -> Iterator[None]:
        """Register an in-flight partition scan with the purge guard.

        Query paths (executors, the batch MQO scan, and every load or
        scoring task of the serving scheduler) wrap their storage-
        touching window in one of these. :meth:`purge_caches` drains
        active sessions before purging and holds off new ones while it
        runs, so a purge can never interleave with a scan half-way —
        the explicit guard the concurrency contract promises, instead
        of timing luck. Sessions are short-lived and never wait on
        anything while registered, which keeps the guard deadlock-free.
        """
        with self._scan_cv:
            while self._purging:
                self._scan_cv.wait()
            self._active_scans += 1
        try:
            yield
        finally:
            with self._scan_cv:
                self._active_scans -= 1
                if self._active_scans == 0:
                    self._scan_cv.notify_all()

    @property
    def active_scans(self) -> int:
        """In-flight scan sessions (observability for tests/benches)."""
        with self._scan_cv:
            return self._active_scans

    def purge_caches(self) -> None:
        """Cold-start scenario: drop every cached page and decoded block,
        including the simulated OS page cache.

        Safe while queries are in flight: waits for active scan
        sessions to drain (holding off new ones), purges, then releases
        the guard. Atomicity is per scan *session*: the serial
        executors and the batch MQO hold one session for the whole
        query, so a purge never lands mid-query for them; served
        queries register shorter per-load/per-score sessions, so a
        purge may fall between two of a served query's partitions —
        results are unaffected (decoded entries are held by
        reference), but that query's remaining loads run cold and its
        cache stats mix pre- and post-purge state.
        """
        self._check_open()
        with self._scan_cv:
            while self._purging:
                self._scan_cv.wait()
            self._purging = True
            while self._active_scans > 0:
                self._scan_cv.wait()
        try:
            self.cache.clear()
            self.codes_cache.clear()
            self.delta_codes.invalidate()
            self.scratch.drain()
            self._drop_centroid_cache()
            with self._os_cache_lock:
                self._os_cached_partitions.clear()
                self._os_cached_code_partitions.clear()
                self._os_cached_centroids = False
        finally:
            with self._scan_cv:
                self._purging = False
                self._scan_cv.notify_all()

    # ------------------------------------------------------------------
    # Scrub & repair
    # ------------------------------------------------------------------

    def _quantizer_healthy(self) -> bool:
        """Cold-verify the stored quantizer payload (CRC + parse)."""
        if not self._use_quantization:
            return True
        payload = self.get_meta(self.quantizer_meta_key)
        if payload is None:
            return True
        stored_crc = self.get_meta(self.quantizer_meta_key + "_crc32")
        if stored_crc is not None and int(stored_crc) != zlib.crc32(
            payload.encode("utf-8")
        ):
            self._quantizer_corrupt = True
            return False
        try:
            quantizer_from_json(payload)
        except (ValueError, KeyError, TypeError):
            self._quantizer_corrupt = True
            return False
        return True

    def scrub(self, budget_bytes: int | None = None) -> ScrubReport:
        """Cold-verify indexed partitions against their stored CRCs.

        Corrupt partitions are quarantined so later queries degrade
        (served as empty, flagged in stats) instead of erroring or
        silently returning wrong neighbors. Otherwise read-only — use
        :meth:`repair` to act on the findings. The delta partition is
        exempt by design (see :meth:`load_partition`).

        With ``budget_bytes`` set the pass is amortized: partitions are
        verified round-robin — resuming after the cursor persisted by
        the previous budgeted pass — and the pass stops once that many
        stored payload bytes have been read (always verifying at least
        one partition so a tiny budget still makes progress).
        Successive maintenance cycles therefore spread a full scrub
        over time instead of stalling one cycle on a cold read of the
        entire index.
        """
        self._check_open()
        corrupt_vectors: list[int] = []
        corrupt_codes: list[int] = []
        unstamped: list[int] = []
        cursor: int | None = None
        if budget_bytes is not None:
            raw = self.get_meta(SCRUB_CURSOR_META_KEY)
            try:
                cursor = None if raw is None else int(raw)
            except ValueError:
                cursor = None
        checked = 0
        spent = 0
        with self.read_snapshot() as conn:
            pids = sorted(
                self._backend.partition_sizes(conn, include_delta=False)
            )
            if budget_bytes is not None and cursor is not None:
                # Rotate so the pass resumes after the last partition
                # the previous budgeted pass verified, wrapping around.
                pids = [p for p in pids if p > cursor] + [
                    p for p in pids if p <= cursor
                ]
            for pid in pids:
                expected = self._backend.stored_checksums(conn, pid)
                try:
                    payload = self._backend.read_partition(conn, pid)
                except (StorageError, ValueError):
                    corrupt_vectors.append(pid)
                else:
                    spent += payload.stored_bytes
                    want = expected.get(CHECKSUM_KIND_VECTORS)
                    if want is None:
                        unstamped.append(pid)
                    elif payload_checksum(payload) != want:
                        corrupt_vectors.append(pid)
                checked += 1
                cursor = pid
                if self._use_quantization:
                    try:
                        codes = self._backend.read_partition_codes(
                            conn, pid
                        )
                    except (StorageError, ValueError):
                        corrupt_codes.append(pid)
                    else:
                        spent += codes.stored_bytes
                        want = expected.get(CHECKSUM_KIND_CODES)
                        if (
                            want is not None
                            and payload_checksum(codes) != want
                        ):
                            corrupt_codes.append(pid)
                if budget_bytes is not None and spent >= budget_bytes:
                    break
        quantizer_ok = self._quantizer_healthy()
        for pid in corrupt_vectors:
            self._quarantine(pid, "scrub: vector payload corrupt")
        for pid in corrupt_codes:
            if pid not in corrupt_vectors:
                self._quarantine(
                    pid, "scrub: code payload corrupt", CODE_DTYPE
                )
        if budget_bytes is not None and cursor is not None:
            self.set_meta(SCRUB_CURSOR_META_KEY, str(cursor))
        self._m_maintenance.inc(action="scrub")
        self.events.emit(
            "scrub",
            partitions_checked=checked,
            corrupt_vectors=len(corrupt_vectors),
            corrupt_codes=len(corrupt_codes),
            quantizer_ok=quantizer_ok,
            partial=budget_bytes is not None,
            bytes_read=spent,
        )
        return ScrubReport(
            partitions_checked=checked,
            corrupt_vectors=tuple(corrupt_vectors),
            corrupt_codes=tuple(corrupt_codes),
            unstamped=tuple(unstamped),
            quantizer_ok=quantizer_ok,
        )

    def repair(self) -> ScrubReport:
        """Scrub, then rebuild what is recoverable and drop the rest.

        - Corrupt codes with healthy floats are re-encoded wholesale
          via :meth:`rebuild_codes`: float blobs stay authoritative, so
          search results are restored bit-identically.
        - Corrupt float payloads are unrecoverable; the partition is
          dropped outright (rows, codes, centroid, checksum rows) so
          the index is consistent again. The report names the dropped
          partitions — those vectors need re-upserting from the source
          of truth.
        - A corrupt quantizer payload is cleared (together with every
          code checksum) so scans fall back to exact float32 until the
          next index build retrains it.
        - Partitions predating checksumming get stamped.

        Clears the quarantine set and purges caches at the end.
        """
        report = self.scrub()
        dropped: list[int] = []
        repaired = 0
        stamped = 0
        if report.corrupt_vectors:
            with self.write_transaction("repair") as conn:
                for pid in report.corrupt_vectors:
                    self._backend.drop_partition(
                        conn, pid, self._use_quantization
                    )
                    conn.execute(
                        "DELETE FROM centroids WHERE partition_id=?",
                        (pid,),
                    )
                    conn.execute(
                        "DELETE FROM partition_checksums "
                        "WHERE partition_id=?",
                        (pid,),
                    )
                    dropped.append(pid)
            self._drop_centroid_cache()
        if report.unstamped:
            survivors = [
                pid for pid in report.unstamped if pid not in set(dropped)
            ]
            if survivors:
                with self.write_transaction("repair") as conn:
                    self._backend.refresh_checksums(
                        conn, survivors, self._use_quantization
                    )
                stamped = len(survivors)
        if not report.quantizer_ok:
            with self.write_transaction("repair") as conn:
                conn.executemany(
                    "DELETE FROM meta WHERE key=?",
                    [
                        (self.quantizer_meta_key,),
                        (self.quantizer_meta_key + "_crc32",),
                    ],
                )
                conn.execute(
                    "DELETE FROM partition_checksums WHERE kind=?",
                    (CHECKSUM_KIND_CODES,),
                )
            with self._quantizer_lock:
                self._quantizer = None
                self._quantizer_loaded = True
            self._quantizer_corrupt = False
        elif report.corrupt_codes:
            quantizer = self.load_quantizer()
            if quantizer is not None:
                repaired = self.rebuild_codes(quantizer)
        with self._quarantine_lock:
            self._quarantined.clear()
        self.purge_caches()
        self._m_maintenance.inc(action="repair")
        self.events.emit(
            "repair",
            dropped_partitions=len(dropped),
            repaired_codes=repaired,
            stamped=stamped,
        )
        return replace(
            report,
            repaired_codes=repaired,
            dropped_partitions=tuple(dropped),
            stamped=stamped,
        )

    # ------------------------------------------------------------------
    # Disk hygiene
    # ------------------------------------------------------------------

    def blob_dead_bytes(self) -> tuple[int, int]:
        """``(dead_bytes, file_bytes)`` of the backend's blob file.

        Dead bytes are append-only garbage: records superseded by a
        rewrite or orphaned by a rolled-back append. ``(0, 0)`` on
        backends without a blob file.
        """
        self._check_open()
        probe = getattr(self._backend, "dead_bytes", None)
        if probe is None:
            return (0, 0)
        with self.read_snapshot() as conn:
            dead, total = probe(conn)
        return int(dead), int(total)

    def compact_storage(self) -> int:
        """Copy live blob records forward and drop the dead bytes.

        Rewrites and rolled-back appends leave superseded records
        behind in the append-only blob file; compaction copies the
        live set into a new generation file and atomically flips every
        locator row (plus the generation meta key) in one ``"compact"``
        transaction — a crash on either side of that commit leaves one
        complete, consistent generation. Returns bytes reclaimed; 0 on
        backends without a compactable blob file.
        """
        self._check_open()
        if not hasattr(self._backend, "compact"):
            return 0
        with self.write_transaction("compact") as conn:
            reclaimed = self._backend.compact(conn)
        self._m_maintenance.inc(action="compact")
        self.events.emit("compact", reclaimed_bytes=int(reclaimed))
        return int(reclaimed)

    def vacuum(self) -> int:
        """Rewrite the database file, reclaiming space from deletes.

        Deletes and partition moves leave free pages inside the file;
        on storage-constrained devices the file should be compacted
        once enough space is reclaimable. Returns bytes saved.
        Serialized with all other writes (VACUUM needs an exclusive
        transaction under the hood).
        """
        self._check_open()
        if not self._backend.file_backed:
            # Nothing on disk to compact; the in-memory backend's
            # placeholder file never grows.
            return 0
        before = os.path.getsize(self._path)
        with self._writer_lock:
            self._writer.execute("VACUUM")
            # Under WAL the rewritten pages sit in the -wal file until
            # a checkpoint; truncate so the main file actually shrinks.
            self._writer.execute("PRAGMA wal_checkpoint(TRUNCATE)")
        after = os.path.getsize(self._path)
        return max(before - after, 0)

    def integrity_check(self) -> list[str]:
        """Run SQLite's integrity check plus MicroNN's own invariants.

        Returns a list of problems (empty means healthy):
        - SQLite b-tree/page corruption,
        - vectors whose partition id has no centroid row (other than
          the reserved delta partition),
        - centroid vector_count drift versus actual partition sizes.
        """
        self._check_open()
        # Resolve the quantizer meta row BEFORE entering the snapshot:
        # get_meta reads through the writer connection, and the
        # backend's check must not depend on engine state mid-read.
        quantizer_trained = (
            self._use_quantization
            and self.get_meta(self.quantizer_meta_key) is not None
        )
        with self.read_snapshot() as conn:
            return self._backend.integrity_problems(
                conn, self._use_quantization, quantizer_trained
            )
