"""Deterministic memory accounting (the reproduction's RSS analog).

The paper's memory claims (Figs. 5, 6b, 8b; "≈10 MB during search") are
about *algorithmic residency*: which bytes must live in memory for the
operation to proceed. A Python process's RSS is dominated by the
interpreter and allocator and cannot resolve MB-level differences, so we
account residency explicitly instead. Every component that holds vector
data registers with a :class:`MemoryTracker`:

- the partition block cache (decoded partition matrices),
- the centroid table once cached,
- clustering mini-batches during index construction,
- per-query working buffers (query matrices, heaps).

``InMemory`` baselines register their full vector buffer, which is what
produces the paper's orders-of-magnitude gap. The tracker records both
current and high-water-mark usage, per category and total.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class MemorySnapshot:
    """Point-in-time view of tracked memory."""

    current_bytes: int
    peak_bytes: int
    by_category: dict[str, int]

    @property
    def current_mib(self) -> float:
        return self.current_bytes / (1024 * 1024)

    @property
    def peak_mib(self) -> float:
        return self.peak_bytes / (1024 * 1024)


class MemoryTracker:
    """Thread-safe byte accounting with per-category breakdown."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._by_category: dict[str, int] = {}
        self._current = 0
        self._peak = 0

    def allocate(self, category: str, nbytes: int) -> None:
        """Record ``nbytes`` becoming resident under ``category``."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        with self._lock:
            self._by_category[category] = (
                self._by_category.get(category, 0) + nbytes
            )
            self._current += nbytes
            if self._current > self._peak:
                self._peak = self._current

    def release(self, category: str, nbytes: int) -> None:
        """Record ``nbytes`` leaving residency under ``category``."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        with self._lock:
            held = self._by_category.get(category, 0)
            if nbytes > held:
                raise ValueError(
                    f"releasing {nbytes} bytes from {category!r} "
                    f"which only holds {held}"
                )
            self._by_category[category] = held - nbytes
            self._current -= nbytes

    def set_category(self, category: str, nbytes: int) -> None:
        """Set a category to an absolute residency (replace semantics)."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        with self._lock:
            held = self._by_category.get(category, 0)
            self._by_category[category] = nbytes
            self._current += nbytes - held
            if self._current > self._peak:
                self._peak = self._current

    def snapshot(self) -> MemorySnapshot:
        with self._lock:
            return MemorySnapshot(
                current_bytes=self._current,
                peak_bytes=self._peak,
                by_category=dict(self._by_category),
            )

    @property
    def current_bytes(self) -> int:
        with self._lock:
            return self._current

    @property
    def peak_bytes(self) -> int:
        with self._lock:
            return self._peak

    def reset_peak(self) -> None:
        """Reset the high-water mark to current usage (between phases)."""
        with self._lock:
            self._peak = self._current

    def transient(self, category: str, nbytes: int) -> "_TransientAllocation":
        """Context manager for a short-lived working buffer.

        Usage::

            with tracker.transient("query_working_set", matrix.nbytes):
                ... compute ...
        """
        return _TransientAllocation(self, category, nbytes)


class _TransientAllocation:
    def __init__(self, tracker: MemoryTracker, category: str, nbytes: int):
        self._tracker = tracker
        self._category = category
        self._nbytes = nbytes

    def __enter__(self) -> "_TransientAllocation":
        self._tracker.allocate(self._category, self._nbytes)
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._tracker.release(self._category, self._nbytes)
