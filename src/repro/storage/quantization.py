"""Scalar quantization (SQ8) for partition storage.

MicroNN's dominant query-path cost is reading and scanning full-
precision float32 partition blobs. Per-dimension min/max scalar
quantization compresses each stored vector to one byte per dimension —
a 4x reduction of the bytes a partition scan must pull from disk —
while keeping the full-precision blobs around for exact reranking of
the few top candidates ("Decoupling Vector Data and Index Storage for
Space Efficiency": compact scan-time codes live apart from the
full-precision vectors used for verification).

The quantizer is *trained* on the indexed collection (one streaming
min/max pass during ``build_index``), persisted in the ``meta`` table,
and applied asymmetrically at query time: the query stays float32,
codes are dequantized on the fly, and the top ``rerank_factor * k``
candidates are re-scored against their float32 vectors. The delta
partition is never quantized — upserts stay a single row write and
fresh vectors are scanned exactly until maintenance folds them in
("Quantization for Vector Search under Streaming Updates": hold the
quantizer fixed between retrains, keep the streaming side exact).
"""

from __future__ import annotations

import json
from dataclasses import dataclass

import numpy as np

from repro.core.errors import DimensionMismatchError, StorageError
from repro.storage.codec import CODE_DTYPE

#: Number of quantization levels per dimension (8-bit codes).
CODE_LEVELS = 255


@dataclass(frozen=True)
class SQ8Quantizer:
    """Per-dimension min/max scalar quantizer (8-bit codes).

    Dimension ``j`` maps ``[lo[j], hi[j]]`` linearly onto ``0..255``;
    values outside the trained range are clipped (the clip fraction is
    the drift signal maintenance watches). A constant dimension
    (``hi == lo``) has scale zero: every value encodes to code 0 and
    decodes back to ``lo`` exactly.
    """

    lo: np.ndarray
    hi: np.ndarray

    def __post_init__(self) -> None:
        lo = np.asarray(self.lo, dtype=np.float32).reshape(-1)
        hi = np.asarray(self.hi, dtype=np.float32).reshape(-1)
        if lo.shape != hi.shape or lo.shape[0] < 1:
            raise StorageError("quantizer lo/hi must be equal-length 1-D")
        if not (np.all(np.isfinite(lo)) and np.all(np.isfinite(hi))):
            raise StorageError("quantizer bounds must be finite")
        if np.any(hi < lo):
            raise StorageError("quantizer requires hi >= lo per dimension")
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)
        scale = (hi.astype(np.float64) - lo) / CODE_LEVELS
        object.__setattr__(self, "_scale", scale.astype(np.float32))

    @property
    def dim(self) -> int:
        return int(self.lo.shape[0])

    @property
    def scale(self) -> np.ndarray:
        """Per-dimension step size ``(hi - lo) / 255`` (0 if constant)."""
        return self._scale  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------

    @classmethod
    def train(cls, matrix: np.ndarray) -> "SQ8Quantizer":
        """Train from one in-memory matrix (rows are vectors)."""
        trainer = SQ8Trainer(np.atleast_2d(matrix).shape[1])
        trainer.update(matrix)
        return trainer.finish()

    # ------------------------------------------------------------------
    # Encode / decode
    # ------------------------------------------------------------------

    def encode(self, matrix: np.ndarray) -> np.ndarray:
        """Quantize rows to uint8 codes of shape ``(n, dim)``.

        Out-of-range values are clipped to the trained range; rounding
        is to the nearest level, so the in-range reconstruction error is
        at most half a step per dimension.
        """
        arr = np.atleast_2d(np.asarray(matrix, dtype=np.float32))
        if arr.shape[1] != self.dim:
            raise DimensionMismatchError(
                expected=self.dim, actual=arr.shape[1]
            )
        scale = self.scale
        safe = np.where(scale > 0, scale, 1.0)
        levels = np.rint((arr - self.lo) / safe)
        np.clip(levels, 0, CODE_LEVELS, out=levels)
        levels[:, scale == 0] = 0
        return levels.astype(CODE_DTYPE)

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Reconstruct float32 approximations from uint8 codes."""
        arr = np.atleast_2d(np.asarray(codes))
        if arr.dtype != CODE_DTYPE:
            raise StorageError(f"codes must be uint8, got {arr.dtype}")
        if arr.shape[1] != self.dim:
            raise DimensionMismatchError(
                expected=self.dim, actual=arr.shape[1]
            )
        # In-place after the (unavoidable) uint8->float32 cast: one
        # allocation instead of three. IEEE addition commutes, so the
        # result is bit-identical to ``lo + cast * scale`` — and this
        # is the per-chunk transient of the block-fused scan kernel,
        # so its footprint is the kernel's footprint.
        out = arr.astype(np.float32)
        out *= self.scale
        out += self.lo
        return out

    def clip_fraction(self, matrix: np.ndarray) -> float:
        """Fraction of components falling outside the trained range.

        This is the drift signal: a quantizer trained on yesterday's
        distribution starts clipping when upserts move the data, and
        clipped components carry unbounded quantization error.
        """
        arr = np.atleast_2d(np.asarray(matrix, dtype=np.float32))
        if arr.size == 0:
            return 0.0
        if arr.shape[1] != self.dim:
            raise DimensionMismatchError(
                expected=self.dim, actual=arr.shape[1]
            )
        outside = np.count_nonzero((arr < self.lo) | (arr > self.hi))
        return float(outside) / float(arr.size)

    # ------------------------------------------------------------------
    # Persistence (meta-table JSON)
    # ------------------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(
            {
                "kind": "sq8",
                "lo": [float(v) for v in self.lo],
                "hi": [float(v) for v in self.hi],
            }
        )

    @classmethod
    def from_json(cls, payload: str) -> "SQ8Quantizer":
        try:
            data = json.loads(payload)
            if data.get("kind") != "sq8":
                raise StorageError(
                    f"unsupported quantizer kind {data.get('kind')!r}"
                )
            return cls(
                lo=np.asarray(data["lo"], dtype=np.float32),
                hi=np.asarray(data["hi"], dtype=np.float32),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise StorageError(f"malformed quantizer payload: {exc}") from exc


class SQ8Trainer:
    """Streaming per-dimension min/max accumulator.

    The builder feeds it disk-streamed batches so training a quantizer
    never materializes the collection — the same memory discipline as
    the mini-batch k-means pass it piggybacks on.
    """

    def __init__(self, dim: int) -> None:
        if dim < 1:
            raise StorageError("dim must be >= 1")
        self._dim = dim
        self._lo = np.full(dim, np.inf, dtype=np.float32)
        self._hi = np.full(dim, -np.inf, dtype=np.float32)
        self._count = 0

    @property
    def count(self) -> int:
        return self._count

    def update(self, matrix: np.ndarray) -> None:
        arr = np.atleast_2d(np.asarray(matrix, dtype=np.float32))
        if arr.shape[0] == 0:
            return
        if arr.shape[1] != self._dim:
            raise DimensionMismatchError(
                expected=self._dim, actual=arr.shape[1]
            )
        np.minimum(self._lo, arr.min(axis=0), out=self._lo)
        np.maximum(self._hi, arr.max(axis=0), out=self._hi)
        self._count += arr.shape[0]

    def finish(self) -> SQ8Quantizer:
        if self._count == 0:
            raise StorageError("cannot train a quantizer on zero vectors")
        return SQ8Quantizer(lo=self._lo.copy(), hi=self._hi.copy())
