"""Partition-storage quantizers: SQ8 scalar and PQ product codes.

MicroNN's dominant query-path cost is reading and scanning full-
precision float32 partition blobs. Two trained quantizers compress the
scan-time representation while the float32 blobs stay authoritative for
exact reranking ("Decoupling Vector Data and Index Storage for Space
Efficiency": compact scan-time codes live apart from the full-precision
vectors used for verification):

- :class:`SQ8Quantizer` — per-dimension min/max scalar quantization,
  one byte per dimension (4x less partition I/O). Codes are decoded on
  the fly inside the block-fused asymmetric kernel.
- :class:`ProductQuantizer` — M sub-vector codebooks of 256 centroids
  each, one byte per *sub-vector* (``4 * dim / M``x less partition
  I/O — 32x at dim=128, M=16). Codes are never decoded on the scan
  path: the ADC kernel in :mod:`repro.query.distance` turns each query
  into an ``M x 256`` lookup table and scores a partition with one
  vectorized gather+sum.

Both are *trained* on the indexed collection during ``build_index``,
persisted in the ``meta`` table, and applied asymmetrically at query
time: the query stays float32 and the top ``rerank_factor * k``
candidates are re-scored against their float32 vectors. The delta
partition stays full-precision on disk — upserts remain a single row
write — though scans may lazily encode a large delta in memory (the
engine's quantized-delta cache); either way fresh vectors are folded
into coded partitions by maintenance ("Quantization for Vector Search
under Streaming Updates": hold the quantizer fixed between retrains,
keep the streaming side exact).
"""

from __future__ import annotations

import json
from dataclasses import dataclass

import numpy as np

from repro.core.errors import DimensionMismatchError, StorageError
from repro.storage.codec import CODE_DTYPE

#: Number of quantization levels per dimension (8-bit codes).
CODE_LEVELS = 255


@dataclass(frozen=True)
class SQ8Quantizer:
    """Per-dimension min/max scalar quantizer (8-bit codes).

    Dimension ``j`` maps ``[lo[j], hi[j]]`` linearly onto ``0..255``;
    values outside the trained range are clipped (the clip fraction is
    the drift signal maintenance watches). A constant dimension
    (``hi == lo``) has scale zero: every value encodes to code 0 and
    decodes back to ``lo`` exactly.
    """

    lo: np.ndarray
    hi: np.ndarray

    def __post_init__(self) -> None:
        lo = np.asarray(self.lo, dtype=np.float32).reshape(-1)
        hi = np.asarray(self.hi, dtype=np.float32).reshape(-1)
        if lo.shape != hi.shape or lo.shape[0] < 1:
            raise StorageError("quantizer lo/hi must be equal-length 1-D")
        if not (np.all(np.isfinite(lo)) and np.all(np.isfinite(hi))):
            raise StorageError("quantizer bounds must be finite")
        if np.any(hi < lo):
            raise StorageError("quantizer requires hi >= lo per dimension")
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)
        scale = (hi.astype(np.float64) - lo) / CODE_LEVELS
        object.__setattr__(self, "_scale", scale.astype(np.float32))

    @property
    def dim(self) -> int:
        return int(self.lo.shape[0])

    @property
    def kind(self) -> str:
        """Scheme tag used for dispatch and ``QueryStats.scan_mode``."""
        return "sq8"

    @property
    def code_width(self) -> int:
        """Stored code bytes per vector (one per dimension)."""
        return self.dim

    @property
    def scale(self) -> np.ndarray:
        """Per-dimension step size ``(hi - lo) / 255`` (0 if constant)."""
        return self._scale  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------

    @classmethod
    def train(cls, matrix: np.ndarray) -> "SQ8Quantizer":
        """Train from one in-memory matrix (rows are vectors)."""
        trainer = SQ8Trainer(np.atleast_2d(matrix).shape[1])
        trainer.update(matrix)
        return trainer.finish()

    # ------------------------------------------------------------------
    # Encode / decode
    # ------------------------------------------------------------------

    def encode(self, matrix: np.ndarray) -> np.ndarray:
        """Quantize rows to uint8 codes of shape ``(n, dim)``.

        Out-of-range values are clipped to the trained range; rounding
        is to the nearest level, so the in-range reconstruction error is
        at most half a step per dimension.
        """
        arr = np.atleast_2d(np.asarray(matrix, dtype=np.float32))
        if arr.shape[1] != self.dim:
            raise DimensionMismatchError(
                expected=self.dim, actual=arr.shape[1]
            )
        scale = self.scale
        safe = np.where(scale > 0, scale, 1.0)
        levels = np.rint((arr - self.lo) / safe)
        np.clip(levels, 0, CODE_LEVELS, out=levels)
        levels[:, scale == 0] = 0
        return levels.astype(CODE_DTYPE)

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Reconstruct float32 approximations from uint8 codes."""
        arr = np.atleast_2d(np.asarray(codes))
        if arr.dtype != CODE_DTYPE:
            raise StorageError(f"codes must be uint8, got {arr.dtype}")
        if arr.shape[1] != self.dim:
            raise DimensionMismatchError(
                expected=self.dim, actual=arr.shape[1]
            )
        # In-place after the (unavoidable) uint8->float32 cast: one
        # allocation instead of three. IEEE addition commutes, so the
        # result is bit-identical to ``lo + cast * scale`` — and this
        # is the per-chunk transient of the block-fused scan kernel,
        # so its footprint is the kernel's footprint.
        out = arr.astype(np.float32)
        out *= self.scale
        out += self.lo
        return out

    def clip_fraction(self, matrix: np.ndarray) -> float:
        """Fraction of components falling outside the trained range.

        This is the drift signal: a quantizer trained on yesterday's
        distribution starts clipping when upserts move the data, and
        clipped components carry unbounded quantization error.
        """
        arr = np.atleast_2d(np.asarray(matrix, dtype=np.float32))
        if arr.size == 0:
            return 0.0
        if arr.shape[1] != self.dim:
            raise DimensionMismatchError(
                expected=self.dim, actual=arr.shape[1]
            )
        outside = np.count_nonzero((arr < self.lo) | (arr > self.hi))
        return float(outside) / float(arr.size)

    # ------------------------------------------------------------------
    # Persistence (meta-table JSON)
    # ------------------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(
            {
                "kind": "sq8",
                "lo": [float(v) for v in self.lo],
                "hi": [float(v) for v in self.hi],
            }
        )

    @classmethod
    def from_json(cls, payload: str) -> "SQ8Quantizer":
        try:
            data = json.loads(payload)
            if data.get("kind") != "sq8":
                raise StorageError(
                    f"unsupported quantizer kind {data.get('kind')!r}"
                )
            return cls(
                lo=np.asarray(data["lo"], dtype=np.float32),
                hi=np.asarray(data["hi"], dtype=np.float32),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise StorageError(f"malformed quantizer payload: {exc}") from exc


class SQ8Trainer:
    """Streaming per-dimension min/max accumulator.

    The builder feeds it disk-streamed batches so training a quantizer
    never materializes the collection — the same memory discipline as
    the mini-batch k-means pass it piggybacks on.
    """

    def __init__(self, dim: int) -> None:
        if dim < 1:
            raise StorageError("dim must be >= 1")
        self._dim = dim
        self._lo = np.full(dim, np.inf, dtype=np.float32)
        self._hi = np.full(dim, -np.inf, dtype=np.float32)
        self._count = 0

    @property
    def count(self) -> int:
        return self._count

    def update(self, matrix: np.ndarray) -> None:
        arr = np.atleast_2d(np.asarray(matrix, dtype=np.float32))
        if arr.shape[0] == 0:
            return
        if arr.shape[1] != self._dim:
            raise DimensionMismatchError(
                expected=self._dim, actual=arr.shape[1]
            )
        np.minimum(self._lo, arr.min(axis=0), out=self._lo)
        np.maximum(self._hi, arr.max(axis=0), out=self._hi)
        self._count += arr.shape[0]

    def finish(self) -> SQ8Quantizer:
        if self._count == 0:
            raise StorageError("cannot train a quantizer on zero vectors")
        return SQ8Quantizer(lo=self._lo.copy(), hi=self._hi.copy())


# ----------------------------------------------------------------------
# Product quantization (PQ)
# ----------------------------------------------------------------------

#: Codebook entries per sub-space (8-bit codes address at most 256).
PQ_CODEBOOK_SIZE = 256

#: Lloyd iterations per sub-space codebook; sub-space k-means converges
#: fast (low-dimensional, 256 centroids) and the codes are reranked
#: exactly anyway, so a short fixed budget keeps builds predictable.
PQ_TRAIN_ITERATIONS = 12

#: A vector whose squared reconstruction error exceeds this multiple of
#: the trained mean is "drifted": the codebooks no longer describe it.
PQ_DRIFT_ERROR_MULTIPLE = 4.0


@dataclass(frozen=True)
class ProductQuantizer:
    """M sub-vector codebooks of up to 256 centroids each.

    A vector is split into ``M`` contiguous sub-vectors of ``dim / M``
    components; each sub-vector is encoded as the index of its nearest
    codebook centroid (plain L2 in sub-space, the standard PQ
    construction regardless of the search metric — the ADC tables
    rebuild metric-specific values per query). One stored code is
    ``M`` bytes: a ``4 * dim / M``x reduction over float32, 32x at
    dim=128 with M=16.

    ``train_mse`` is the mean squared reconstruction error over the
    training sample; maintenance compares fresh upserts against it to
    detect distribution drift (:meth:`drift_fraction`).
    """

    codebooks: np.ndarray
    train_mse: float = 0.0

    def __post_init__(self) -> None:
        books = np.asarray(self.codebooks, dtype=np.float32)
        if books.ndim != 3:
            raise StorageError(
                f"codebooks must be (M, K, dsub), got shape {books.shape}"
            )
        m, k, dsub = books.shape
        if m < 1 or dsub < 1 or not 1 <= k <= PQ_CODEBOOK_SIZE:
            raise StorageError(
                f"codebooks must be (M>=1, 1<=K<={PQ_CODEBOOK_SIZE}, "
                f"dsub>=1), got shape {books.shape}"
            )
        if not np.all(np.isfinite(books)):
            raise StorageError("codebooks must be finite")
        if not np.isfinite(self.train_mse) or self.train_mse < 0:
            raise StorageError("train_mse must be finite and >= 0")
        object.__setattr__(self, "codebooks", books)
        # Per-centroid squared norms, shape (M, K): the second lookup
        # table of the cosine ADC path (||x̂||^2 = Σ_m ||c_m||^2 is
        # additive over sub-spaces exactly like the inner product).
        norms = np.einsum(
            "mkd,mkd->mk", books, books, dtype=np.float64
        ).astype(np.float32)
        object.__setattr__(self, "_sub_norms", norms)

    @property
    def kind(self) -> str:
        """Scheme tag used for dispatch and ``QueryStats.scan_mode``."""
        return "pq"

    @property
    def num_subvectors(self) -> int:
        return int(self.codebooks.shape[0])

    @property
    def num_centroids(self) -> int:
        return int(self.codebooks.shape[1])

    @property
    def subvector_dim(self) -> int:
        return int(self.codebooks.shape[2])

    @property
    def dim(self) -> int:
        return self.num_subvectors * self.subvector_dim

    @property
    def code_width(self) -> int:
        """Stored code bytes per vector (one per sub-vector)."""
        return self.num_subvectors

    @property
    def codeword_sq_norms(self) -> np.ndarray:
        """Per-centroid squared norms, shape (M, K) — cosine ADC table."""
        return self._sub_norms  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------

    @classmethod
    def train(
        cls,
        matrix: np.ndarray,
        num_subvectors: int,
        seed: int = 0,
        iterations: int = PQ_TRAIN_ITERATIONS,
    ) -> "ProductQuantizer":
        """Train M sub-space codebooks with Lloyd k-means.

        ``matrix`` is the training sample (the builder draws a bounded
        ``pq_train_sample``-sized sample, so training memory is the
        sample plus one (n, 256) distance block per sub-space, never
        the collection). Deterministic for a given (sample, seed).
        """
        arr = np.atleast_2d(np.asarray(matrix, dtype=np.float32))
        n, dim = arr.shape
        if n < 1:
            raise StorageError("cannot train a quantizer on zero vectors")
        if num_subvectors < 1 or dim % num_subvectors != 0:
            raise StorageError(
                f"num_subvectors must divide dim evenly: dim={dim}, "
                f"num_subvectors={num_subvectors}"
            )
        dsub = dim // num_subvectors
        k = min(PQ_CODEBOOK_SIZE, n)
        rng = np.random.default_rng(seed)
        books = np.empty((num_subvectors, k, dsub), dtype=np.float32)
        for m in range(num_subvectors):
            sub = arr[:, m * dsub : (m + 1) * dsub]
            books[m] = _lloyd_subspace(sub, k, rng, iterations)
        quantizer = cls(codebooks=books)
        errors = quantizer.reconstruction_errors(arr)
        return cls(
            codebooks=books, train_mse=float(np.mean(errors))
        )

    # ------------------------------------------------------------------
    # Encode / decode
    # ------------------------------------------------------------------

    def encode(self, matrix: np.ndarray) -> np.ndarray:
        """Quantize rows to uint8 codes of shape ``(n, M)``."""
        arr = np.atleast_2d(np.asarray(matrix, dtype=np.float32))
        if arr.shape[1] != self.dim:
            raise DimensionMismatchError(
                expected=self.dim, actual=arr.shape[1]
            )
        m, _, dsub = self.codebooks.shape
        codes = np.empty((arr.shape[0], m), dtype=CODE_DTYPE)
        for i in range(m):
            sub = arr[:, i * dsub : (i + 1) * dsub].astype(np.float64)
            book = self.codebooks[i].astype(np.float64)
            # ||s - c||^2 = ||s||^2 - 2 s.c + ||c||^2; the ||s||^2 term
            # is constant per row, so the argmin needs only the GEMM
            # and the centroid norms. Accumulated in float64: in
            # float32 the expanded form loses the gap between nearby
            # centroids once ||c||^2 dominates, and the argmin can
            # assign a centroid to a DIFFERENT centroid — breaking
            # encode(decode(encode(x))) == encode(x).
            scores = np.einsum("kd,kd->k", book, book)[None, :] - 2.0 * (
                sub @ book.T
            )
            codes[:, i] = np.argmin(scores, axis=1).astype(CODE_DTYPE)
        return codes

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Reconstruct float32 approximations from uint8 codes.

        Off the hot path by design: the ADC scan never materializes
        reconstructions; this exists for training telemetry, drift
        detection and the property-test oracle.
        """
        arr = np.atleast_2d(np.asarray(codes))
        if arr.dtype != CODE_DTYPE:
            raise StorageError(f"codes must be uint8, got {arr.dtype}")
        m = self.num_subvectors
        if arr.shape[1] != m:
            raise DimensionMismatchError(expected=m, actual=arr.shape[1])
        if arr.size and int(arr.max()) >= self.num_centroids:
            raise StorageError(
                f"code references centroid {int(arr.max())} but the "
                f"codebook holds {self.num_centroids}"
            )
        gathered = self.codebooks[np.arange(m)[None, :], arr]
        return np.ascontiguousarray(
            gathered.reshape(arr.shape[0], self.dim)
        )

    def reconstruction_errors(self, matrix: np.ndarray) -> np.ndarray:
        """Per-row squared reconstruction error ``||x - x̂||^2``."""
        arr = np.atleast_2d(np.asarray(matrix, dtype=np.float32))
        if arr.shape[0] == 0:
            return np.empty(0, dtype=np.float32)
        recon = self.decode(self.encode(arr))
        diff = arr - recon
        return np.einsum("ij,ij->i", diff, diff)

    def drift_fraction(self, matrix: np.ndarray) -> float:
        """Fraction of rows the trained codebooks no longer describe.

        The PQ analog of :meth:`SQ8Quantizer.clip_fraction`: a row
        whose squared reconstruction error exceeds
        ``PQ_DRIFT_ERROR_MULTIPLE x train_mse`` lies off the trained
        distribution, and enough of them means maintenance should
        retrain the codebooks. The baseline is floored at a small
        fraction of the codebooks' own energy: a tiny training sample
        (<= 256 distinct vectors) fits itself exactly and records
        ``train_mse == 0``, and a purely relative test would then flag
        every later upsert as drifted — a retrain on every flush that
        can never converge, since the retrain reproduces mse 0.
        """
        errors = self.reconstruction_errors(matrix)
        if errors.size == 0:
            return 0.0
        scale_floor = 1e-4 * float(np.mean(self.codeword_sq_norms))
        baseline = max(self.train_mse, scale_floor, 1e-12)
        drifted = np.count_nonzero(
            errors > PQ_DRIFT_ERROR_MULTIPLE * baseline
        )
        return float(drifted) / float(errors.size)

    # ------------------------------------------------------------------
    # Persistence (meta-table JSON)
    # ------------------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(
            {
                "kind": "pq",
                "shape": list(self.codebooks.shape),
                # float32 values survive the float64 JSON round trip
                # exactly, so codes re-encode bit-identically.
                "codebooks": [
                    float(v) for v in self.codebooks.reshape(-1)
                ],
                "train_mse": float(self.train_mse),
            }
        )

    @classmethod
    def from_json(cls, payload: str) -> "ProductQuantizer":
        try:
            data = json.loads(payload)
            if data.get("kind") != "pq":
                raise StorageError(
                    f"unsupported quantizer kind {data.get('kind')!r}"
                )
            shape = tuple(int(v) for v in data["shape"])
            books = np.asarray(
                data["codebooks"], dtype=np.float32
            ).reshape(shape)
            return cls(
                codebooks=books,
                train_mse=float(data.get("train_mse", 0.0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise StorageError(f"malformed quantizer payload: {exc}") from exc


def _lloyd_subspace(
    sub: np.ndarray, k: int, rng: np.random.Generator, iterations: int
) -> np.ndarray:
    """Plain Lloyd k-means over one sub-space, (k, dsub) centroids.

    Sums are accumulated per dimension with ``bincount`` (no Python
    per-row loop); empty clusters are re-seeded onto the rows worst
    served by the current codebook so all 256 codes stay useful.
    """
    n = sub.shape[0]
    centroids = sub[rng.choice(n, size=k, replace=False)].copy()
    row_norms = np.einsum("ij,ij->i", sub, sub)
    rows = np.arange(n)
    for _ in range(iterations):
        # ||s - c||^2 modulo the per-row constant: enough for argmin,
        # and the constant is added back only for the reseed ordering.
        cent_norms = np.einsum("ij,ij->i", centroids, centroids)
        scores = cent_norms[None, :] - 2.0 * (sub @ centroids.T)
        assign = np.argmin(scores, axis=1)
        counts = np.bincount(assign, minlength=k)
        sums = np.empty((k, sub.shape[1]), dtype=np.float64)
        for d in range(sub.shape[1]):
            sums[:, d] = np.bincount(
                assign, weights=sub[:, d], minlength=k
            )
        nonempty = counts > 0
        centroids[nonempty] = (
            sums[nonempty] / counts[nonempty, None]
        ).astype(np.float32)
        empties = np.flatnonzero(~nonempty)
        if empties.size:
            assigned = row_norms + scores[rows, assign]
            worst = np.argsort(assigned)[::-1]
            centroids[empties] = sub[worst[: empties.size]]
    return centroids


#: Either trained quantizer; the scan path dispatches on ``.kind``.
Quantizer = SQ8Quantizer | ProductQuantizer


def quantizer_from_json(payload: str) -> Quantizer:
    """Parse a persisted quantizer of either kind (meta-table JSON)."""
    try:
        kind = json.loads(payload).get("kind")
    except (TypeError, ValueError) as exc:
        raise StorageError(f"malformed quantizer payload: {exc}") from exc
    if kind == "sq8":
        return SQ8Quantizer.from_json(payload)
    if kind == "pq":
        return ProductQuantizer.from_json(payload)
    raise StorageError(f"unsupported quantizer kind {kind!r}")
