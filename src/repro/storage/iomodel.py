"""I/O accounting and optional synthetic storage latency.

Two jobs, both about reproducing the paper's disk story on arbitrary
hosts:

1. **Accounting** — count bytes read from storage, cache hits/misses,
   and rows written. Figure 10d reports "number of DB row changes" as
   the I/O (flash-wear) cost of index maintenance; :class:`IOStats`
   is where those counters live.
2. **Latency injection** — the paper's cold-start numbers come from a
   device whose storage is far slower than a server's warm page cache.
   When a :class:`~repro.core.config.IOCostModel` is enabled, uncached
   reads sleep for ``seek + bytes * per_byte``, giving cold/warm and
   Small/Large the published shape without real hardware. Disabled by
   default so tests run at full speed.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.core.config import IOCostModel


@dataclass(frozen=True, slots=True)
class IOSnapshot:
    """Point-in-time view of I/O counters."""

    bytes_read: int
    read_requests: int
    cache_hits: int
    cache_misses: int
    rows_written: int
    simulated_latency_s: float
    #: Partition loads answered by the quarantine list instead of
    #: storage: a checksum mismatch was detected (now or earlier) and
    #: the partition was served as empty, degrading the query.
    partitions_quarantined: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        if total == 0:
            return 0.0
        return self.cache_hits / total


class IOAccountant:
    """Thread-safe I/O counters with optional latency injection."""

    def __init__(self, model: IOCostModel | None = None) -> None:
        self._model = model or IOCostModel()
        self._lock = threading.Lock()
        self._bytes_read = 0
        self._read_requests = 0
        self._cache_hits = 0
        self._cache_misses = 0
        self._rows_written = 0
        self._simulated_latency = 0.0
        self._partitions_quarantined = 0

    @property
    def model(self) -> IOCostModel:
        return self._model

    def record_read(self, nbytes: int, charge_cost: bool = True) -> None:
        """Record a read; charge the cost model unless the bytes came
        from the (simulated) OS page cache.

        The distinction mirrors real devices: the paper's WarmCache
        scenario is fast because SQLite reads hit the OS page cache —
        memory that is *not* charged to the process — while ColdStart
        pays storage latency. ``charge_cost=False`` still counts the
        bytes (they were read through the storage API) but sleeps for
        nothing.
        """
        cost = self._model.cost(nbytes) if charge_cost else 0.0
        with self._lock:
            self._bytes_read += nbytes
            self._read_requests += 1
            self._simulated_latency += cost
        if cost > 0:
            time.sleep(cost)

    def record_cache_hit(self) -> None:
        with self._lock:
            self._cache_hits += 1

    def record_cache_miss(self) -> None:
        with self._lock:
            self._cache_misses += 1

    def record_quarantined(self) -> None:
        """Record one partition load served from the quarantine list."""
        with self._lock:
            self._partitions_quarantined += 1

    def record_rows_written(self, count: int) -> None:
        """Record rows inserted/updated/deleted (flash-wear proxy)."""
        if count < 0:
            raise ValueError("count must be >= 0")
        with self._lock:
            self._rows_written += count

    def snapshot(self) -> IOSnapshot:
        with self._lock:
            return IOSnapshot(
                bytes_read=self._bytes_read,
                read_requests=self._read_requests,
                cache_hits=self._cache_hits,
                cache_misses=self._cache_misses,
                rows_written=self._rows_written,
                simulated_latency_s=self._simulated_latency,
                partitions_quarantined=self._partitions_quarantined,
            )

    def delta_since(self, before: IOSnapshot) -> IOSnapshot:
        """Counters accumulated since ``before`` was captured."""
        now = self.snapshot()
        return IOSnapshot(
            bytes_read=now.bytes_read - before.bytes_read,
            read_requests=now.read_requests - before.read_requests,
            cache_hits=now.cache_hits - before.cache_hits,
            cache_misses=now.cache_misses - before.cache_misses,
            rows_written=now.rows_written - before.rows_written,
            simulated_latency_s=(
                now.simulated_latency_s - before.simulated_latency_s
            ),
            partitions_quarantined=(
                now.partitions_quarantined - before.partitions_quarantined
            ),
        )

    @property
    def rows_written(self) -> int:
        with self._lock:
            return self._rows_written
