"""Disk-resident relational storage substrate (SQLite + caching)."""

from repro.storage.backends import (
    StorageBackend,
    create_backend,
    detect_backend,
)
from repro.storage.cache import CachedPartition, PartitionCache
from repro.storage.codec import (
    decode_matrix,
    decode_vector,
    encode_matrix,
    encode_vector,
)
from repro.storage.engine import StorageEngine, VectorRecord
from repro.storage.iomodel import IOAccountant, IOSnapshot
from repro.storage.memory import MemorySnapshot, MemoryTracker

__all__ = [
    "CachedPartition",
    "PartitionCache",
    "StorageBackend",
    "StorageEngine",
    "VectorRecord",
    "create_backend",
    "detect_backend",
    "IOAccountant",
    "IOSnapshot",
    "MemoryTracker",
    "MemorySnapshot",
    "decode_matrix",
    "decode_vector",
    "encode_matrix",
    "encode_vector",
]
