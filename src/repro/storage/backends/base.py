"""The storage-backend protocol: the physical-layout surface.

:class:`~repro.storage.engine.StorageEngine` owns everything a layout
does not care about — caches, scratch buffers, byte accounting, the
quantizer lifecycle, attribute/token/centroid/meta SQL (identical
across backends) — and delegates the *vector payload* surface to a
:class:`StorageBackend`: how vector rows and quantized code rows are
physically laid out, read and rewritten, plus how connections to the
underlying store are made.

Three implementations ship (see the package ``__init__``):

- ``sqlite-row`` — the paper's layout: one SQLite row per vector,
  clustered by ``(partition_id, asset_id, vector_id)``. Byte-identical
  on disk to every previous version of this repo.
- ``sqlite-packed`` — one contiguous blob per partition (ids array +
  packed float32/sq8/pq payload in a single row), eliminating the
  ~40 bytes/row of key+record overhead that dominates partition reads
  once codes shrink to 8–16 bytes (the "decoupling vector data and
  index storage" design; see PAPERS.md).
- ``memory`` — the row layout on a single shared in-memory SQLite
  connection: zero disk I/O, for tests and benchmarks.

The contract every backend must honor for cross-backend bit-identity:
partition reads return rows ordered by ``(asset_id, vector_id)``,
full-collection iteration orders by ``(partition_id, asset_id,
vector_id)`` with the delta partition (id ``-1``) first, and id
point-fetches return each request chunk in ascending ``asset_id``
order. The row-stable distance kernels then produce identical results
over identical row orders.
"""

from __future__ import annotations

import abc
import os
import sqlite3
import threading
import zlib
from dataclasses import dataclass
from typing import Callable, ClassVar, Iterable, Iterator, Sequence

#: Estimated fixed per-row storage overhead of one SQLite row (b-tree
#: key + record header), used for byte accounting of row-per-vector
#: reads and of per-row point fetches on every backend.
SQLITE_ROW_OVERHEAD_BYTES = 24

#: Estimated fixed per-partition overhead of one packed blob row.
PACKED_PARTITION_OVERHEAD_BYTES = 24

#: Meta-table key recording which backend laid out the database file.
BACKEND_META_KEY = "storage_backend"

#: Checksum kinds in the ``partition_checksums`` table.
CHECKSUM_KIND_VECTORS = "vectors"
CHECKSUM_KIND_CODES = "codes"

#: First bytes of every SQLite database file.
SQLITE_MAGIC = b"SQLite format 3\x00"

#: Content of the placeholder file a memory backend leaves at its path
#: (so path-existence checks, e.g. the shard manifest's, keep working).
MEMORY_MARKER = (
    b"MicroNN memory-backend placeholder: the data lives in process "
    b"memory and does not survive process exit.\n"
)


@dataclass
class PartitionPayload:
    """One partition's rows as read from a backend, before decoding.

    Exactly one of ``blobs`` (row-per-vector layouts: one blob per
    row) or ``packed`` (packed layouts: one contiguous buffer) is
    set; both are ``None``/empty for an empty partition.

    ``stored_bytes`` is the backend's estimate of the physical bytes
    this read pulled from storage (payload plus layout overhead) —
    what the I/O accountant charges, and what makes the packed
    layout's smaller reads visible end to end.
    """

    asset_ids: tuple[str, ...]
    vector_ids: tuple[int, ...]
    blobs: list[bytes] | None
    packed: bytes | memoryview | None
    stored_bytes: int

    def __len__(self) -> int:
        return len(self.asset_ids)


def payload_checksum(payload: PartitionPayload) -> int:
    """CRC32 over a partition payload's logical content.

    Covers the ids as well as the stored bytes, so a flipped byte in a
    packed asset-id array is caught just like one in the vector
    payload. Computed from the SAME object ``read_partition`` returns,
    so write-side stamping (which re-reads through the same method)
    and read-side verification agree by construction within a backend.
    """
    crc = 0
    for asset_id in payload.asset_ids:
        crc = zlib.crc32(asset_id.encode("utf-8"), crc)
    for vector_id in payload.vector_ids:
        crc = zlib.crc32(
            int(vector_id).to_bytes(8, "little", signed=True), crc
        )
    if payload.packed is not None:
        crc = zlib.crc32(payload.packed, crc)
    elif payload.blobs:
        for blob in payload.blobs:
            crc = zlib.crc32(blob, crc)
    return crc


class StorageBackend(abc.ABC):
    """Physical layout + connection strategy behind a StorageEngine."""

    #: Registry name, persisted in the meta table and the shard
    #: manifest fingerprint.
    kind: ClassVar[str]

    #: Whether readers and the writer share one connection (the memory
    #: backend). The engine then serializes reads behind
    #: :attr:`writer_lock` instead of relying on WAL snapshots.
    shared_connection: ClassVar[bool] = False

    #: Whether the database lives in a real file (vacuum/size checks).
    file_backed: ClassVar[bool] = True

    #: Whether ``read_partition``/``read_partition_codes`` return
    #: ``packed`` buffers that are long-lived zero-copy views (e.g.
    #: into an ``mmap``). The engine then hands the scan kernels a
    #: read-only NumPy view over the buffer instead of copying it into
    #: a scratch lease or a fresh array.
    serves_mmap_views: ClassVar[bool] = False

    def __init__(self, path: str, config) -> None:
        self._path = path
        self._config = config
        #: The engine's write serialization lock. Owned here so a
        #: shared-connection backend can serialize its internal reads
        #: against the same lock.
        self.writer_lock = threading.RLock()

    @property
    def path(self) -> str:
        return self._path

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def connect_writer(self) -> sqlite3.Connection:
        """Open (or hand out) the single writer connection."""

    @abc.abstractmethod
    def connect_reader(self) -> sqlite3.Connection:
        """Open (or hand out) a reader connection for this thread."""

    def close_connection(self, conn: sqlite3.Connection) -> None:
        """Close one connection handed out by this backend."""
        conn.close()

    def shutdown(self) -> None:
        """Release backend-held resources after connections closed."""

    # ------------------------------------------------------------------
    # Commit points
    # ------------------------------------------------------------------

    def before_begin_write(self) -> None:
        """Hook fired just before a write transaction's BEGIN.

        The fault-injecting test backend raises transient ``database
        is locked`` errors here to exercise the engine's bounded
        busy-retry deterministically.
        """

    def before_commit(self, label: str) -> None:
        """Hook fired by the engine just before a write txn commits.

        ``label`` names the commit point (``"upsert"``, ``"flush"``,
        …). No-op for real backends; the fault-injecting test backend
        counts these and raises :class:`SimulatedCrash` on scripted
        ordinals to prove every commit point is crash-consistent.
        """

    def after_commit(self, label: str) -> None:
        """Hook fired right after a write txn committed durably."""

    # ------------------------------------------------------------------
    # Schema & stored-kind validation
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def create_layout_tables(
        self, conn: sqlite3.Connection, use_quantization: bool
    ) -> None:
        """Create this layout's vector/code tables (idempotent)."""

    def validate_stored_kind(self, conn: sqlite3.Connection) -> None:
        """Refuse to open a database laid out by a different backend.

        Runs BEFORE any DDL so a mismatched open never pollutes the
        file with the wrong layout's empty tables. A database that
        predates the backend abstraction (meta table present, no
        ``storage_backend`` key) is by definition ``sqlite-row``.
        """
        from repro.core.errors import StorageError

        has_meta = conn.execute(
            "SELECT 1 FROM sqlite_master "
            "WHERE type='table' AND name='meta'"
        ).fetchone()
        if has_meta is None:
            return  # fresh database; this backend claims it
        row = conn.execute(
            "SELECT value FROM meta WHERE key=?", (BACKEND_META_KEY,)
        ).fetchone()
        stored = str(row[0]) if row is not None else "sqlite-row"
        if stored != self.kind:
            raise StorageError(
                f"database at {self._path!r} was created with "
                f"storage_backend={stored!r}; config says "
                f"storage_backend={self.kind!r}. Reopen it with the "
                "backend it was created with."
            )

    # ------------------------------------------------------------------
    # Vector writes
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def remove_assets(
        self,
        conn: sqlite3.Connection,
        asset_ids: Sequence[str],
        drop_codes: bool,
    ) -> int:
        """Remove the assets' vector (and code) rows; return count."""

    @abc.abstractmethod
    def insert_delta_rows(
        self,
        conn: sqlite3.Connection,
        rows: Sequence[tuple[str, int, bytes]],
    ) -> None:
        """Insert fresh ``(asset_id, vector_id, blob)`` delta rows."""

    @abc.abstractmethod
    def apply_assignments(
        self,
        conn: sqlite3.Connection,
        moves: Sequence[tuple[str, int]],
        code_rows: Sequence[tuple[int, str, int, bytes]] | None,
        use_quantization: bool,
    ) -> None:
        """Move vectors (and their codes) between partitions."""

    @abc.abstractmethod
    def rewrite_codes(
        self,
        conn: sqlite3.Connection,
        encode_blobs: Callable[[list[bytes]], list[bytes]],
        batch_size: int,
    ) -> int:
        """Drop all codes, re-encode every indexed vector; return count.

        ``encode_blobs`` maps a batch of float32 vector blobs to the
        same-length list of code blobs (the engine closes over the
        trained quantizer).
        """

    @abc.abstractmethod
    def drop_partition(
        self,
        conn: sqlite3.Connection,
        partition_id: int,
        use_quantization: bool,
    ) -> int:
        """Delete one partition's vector (and code) rows; return count.

        The unrecoverable-corruption escape hatch of ``repair()``: the
        caller is responsible for the layout-independent cleanup
        (centroid row, checksum rows).
        """

    # ------------------------------------------------------------------
    # Checksums
    # ------------------------------------------------------------------

    def partitions_of(
        self, conn: sqlite3.Connection, asset_ids: Sequence[str]
    ) -> set[int]:
        """Distinct partitions currently holding any of the assets."""
        out: set[int] = set()
        for asset_id in asset_ids:
            pid = self.get_partition_of(conn, asset_id)
            if pid is not None:
                out.add(int(pid))
        return out

    def stored_checksums(
        self, conn: sqlite3.Connection, partition_id: int
    ) -> dict[str, int]:
        """The recorded CRCs of one partition (absent kinds missing)."""
        rows = conn.execute(
            "SELECT kind, crc32 FROM partition_checksums "
            "WHERE partition_id=?",
            (partition_id,),
        ).fetchall()
        return {str(kind): int(crc) for kind, crc in rows}

    def checksummed_partitions(self, conn: sqlite3.Connection) -> set[int]:
        """Every partition with at least one recorded checksum."""
        rows = conn.execute(
            "SELECT DISTINCT partition_id FROM partition_checksums"
        ).fetchall()
        return {int(r[0]) for r in rows}

    def refresh_checksums(
        self,
        conn: sqlite3.Connection,
        partition_ids: Iterable[int] | None,
        use_quantization: bool,
        kinds: tuple[str, ...] = (
            CHECKSUM_KIND_VECTORS,
            CHECKSUM_KIND_CODES,
        ),
    ) -> None:
        """Recompute and store the CRCs of the given partitions.

        Must run inside the same write transaction as the mutation it
        covers, so payload and checksum commit (or roll back)
        together. ``None`` refreshes every indexed partition plus any
        partition that still has a stale checksum row. The delta
        partition is never checksummed: every upsert rewrites it, and
        its scans are always full-precision and reranked exactly.
        """
        from repro.core.config import DELTA_PARTITION_ID

        if partition_ids is None:
            pids = set(self.partition_sizes(conn, include_delta=False))
            pids.update(self.checksummed_partitions(conn))
        else:
            pids = {int(p) for p in partition_ids}
        pids.discard(DELTA_PARTITION_ID)
        for pid in sorted(pids):
            if CHECKSUM_KIND_VECTORS in kinds:
                self._stamp_checksum(
                    conn,
                    pid,
                    CHECKSUM_KIND_VECTORS,
                    self.read_partition(conn, pid),
                )
            if CHECKSUM_KIND_CODES in kinds and use_quantization:
                self._stamp_checksum(
                    conn,
                    pid,
                    CHECKSUM_KIND_CODES,
                    self.read_partition_codes(conn, pid),
                )

    def _stamp_checksum(
        self,
        conn: sqlite3.Connection,
        partition_id: int,
        kind: str,
        payload: PartitionPayload,
    ) -> None:
        if len(payload):
            conn.execute(
                "INSERT OR REPLACE INTO partition_checksums "
                "(partition_id, kind, crc32) VALUES (?, ?, ?)",
                (partition_id, kind, payload_checksum(payload)),
            )
        else:
            conn.execute(
                "DELETE FROM partition_checksums "
                "WHERE partition_id=? AND kind=?",
                (partition_id, kind),
            )

    # ------------------------------------------------------------------
    # Vector reads
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def read_partition(
        self, conn: sqlite3.Connection, partition_id: int
    ) -> PartitionPayload:
        """One partition's float32 rows, ordered by (asset, vector) id."""

    @abc.abstractmethod
    def read_partition_codes(
        self, conn: sqlite3.Connection, partition_id: int
    ) -> PartitionPayload:
        """One partition's code rows, same order as the float rows."""

    @abc.abstractmethod
    def fetch_vector_blobs(
        self,
        conn: sqlite3.Connection,
        asset_ids: Sequence[str],
        chunk_size: int,
    ) -> tuple[list[str], list[bytes], int]:
        """Point-fetch: (found_ids, blobs, stored_bytes), chunk-sorted."""

    @abc.abstractmethod
    def get_vector_blob(
        self, conn: sqlite3.Connection, asset_id: str
    ) -> bytes | None:
        """One asset's float32 blob, or None."""

    @abc.abstractmethod
    def get_partition_of(
        self, conn: sqlite3.Connection, asset_id: str
    ) -> int | None:
        """The partition currently holding the asset, or None."""

    @abc.abstractmethod
    def iter_row_batches(
        self,
        conn: sqlite3.Connection,
        include_delta: bool,
        batch_size: int,
    ) -> Iterator[tuple[list[str], list[bytes], int]]:
        """Stream all rows as (ids, blobs, stored_bytes) batches.

        Global order is ``(partition_id, asset_id, vector_id)`` with
        the delta partition first — index builds sample and assign in
        this order, so it must be identical across backends.
        """

    @abc.abstractmethod
    def all_asset_ids(self, conn: sqlite3.Connection) -> list[str]:
        """Every stored asset id, ascending."""

    @abc.abstractmethod
    def count_vectors(
        self, conn: sqlite3.Connection, include_delta: bool
    ) -> int:
        ...

    @abc.abstractmethod
    def delta_size(self, conn: sqlite3.Connection) -> int:
        ...

    @abc.abstractmethod
    def partition_sizes(
        self, conn: sqlite3.Connection, include_delta: bool
    ) -> dict[int, int]:
        ...

    @abc.abstractmethod
    def count_codes(self, conn: sqlite3.Connection) -> int:
        ...

    # ------------------------------------------------------------------
    # Integrity
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def integrity_problems(
        self,
        conn: sqlite3.Connection,
        use_quantization: bool,
        quantizer_trained: bool,
    ) -> list[str]:
        """Layout-specific invariant violations (empty = healthy)."""


class SQLiteFileConnectionsMixin:
    """WAL-mode file connections shared by the SQLite file backends.

    One writer + per-thread readers, exactly the paper's concurrency
    design: the pragmas here are THE pragmas the engine has always
    used, so the row backend's files stay byte-identical to databases
    created before the backend abstraction existed.
    """

    def _connect(self) -> sqlite3.Connection:
        self._validate_file()
        conn = sqlite3.connect(
            self.path, timeout=30.0, check_same_thread=False
        )
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        conn.execute("PRAGMA foreign_keys=ON")
        page_budget = self._config.device.sqlite_cache_bytes
        conn.execute(f"PRAGMA cache_size=-{max(1, page_budget // 1024)}")
        return conn

    def _validate_file(self) -> None:
        from repro.core.errors import StorageError

        if os.path.exists(self.path) and file_looks_like_memory_marker(
            self.path
        ):
            raise StorageError(
                f"{self.path!r} is a memory-backend placeholder, not a "
                "SQLite database; its data lived in process memory. "
                "Open it with storage_backend='memory' (same process) "
                "or rebuild it."
            )

    def connect_writer(self) -> sqlite3.Connection:
        return self._connect()

    def connect_reader(self) -> sqlite3.Connection:
        conn = self._connect()
        conn.execute("PRAGMA query_only=ON")
        return conn


def file_looks_like_memory_marker(path: str) -> bool:
    """Whether ``path`` holds a memory backend's placeholder file."""
    try:
        with open(path, "rb") as fh:
            return fh.read(len(MEMORY_MARKER)) == MEMORY_MARKER
    except OSError:
        return False


def file_looks_like_sqlite(path: str) -> bool:
    try:
        with open(path, "rb") as fh:
            head = fh.read(len(SQLITE_MAGIC))
    except OSError:
        return False
    # A zero-length file is what sqlite3.connect leaves behind before
    # the first page is written; treat it as a (fresh) database.
    return head == SQLITE_MAGIC or (
        len(head) == 0 and os.path.exists(path)
    )
