"""Blob-file layout: mmap'd append-only record file + SQLite locator.

The packed layout removed the per-row b-tree tax, but every cold scan
still funnels partition bytes through SQLite's blob read path into a
fresh Python buffer. This backend takes the remaining step (the
"decoupling vector data and index storage" design; see PAPERS.md):
partition vector/code payloads live as length-prefixed, CRC-stamped
records in an append-only ``<db>.blob.<gen>`` file accessed through
``mmap``, while SQLite keeps everything else — metadata, the delta
store, the asset locator, and the ``blob_locator`` table mapping each
``(partition_id, kind)`` to its record's byte range.

Why this is fast AND crash-safe with almost no new machinery:

- **Zero-copy scans.** ``read_partition`` returns a ``memoryview``
  over the mapping; the engine wraps it in a read-only NumPy view
  (``serves_mmap_views``), so a cold scan materializes no float32 or
  code buffer at all — the kernels read the page cache directly.
- **Point reads are offset slices.** The rerank fetch of one row is
  ``mmap[payload_off + i*width : ...]`` — the same bytes the packed
  layout's ``substr`` ranged read charges, without the SQL detour.
- **Torn appends are unreachable garbage.** A rewrite appends the new
  record, fsyncs, and flips the locator row inside the SAME SQLite
  transaction. If the transaction rolls back (or the process dies
  mid-append) the bytes are never referenced; no committed state can
  point at a half-written record, so the PR 7 kill-point sweep and
  the scrub/repair machinery apply unchanged.
- **Compaction is an atomic swap.** Dead bytes (superseded records
  plus rolled-back appends) are reclaimed by copying live records
  into generation ``N+1`` and updating every locator row plus the
  ``blob_generation`` meta key in one transaction (commit label
  ``"compact"``). A crash on either side leaves one coherent
  generation; the stale file is swept on the next open.

Row order inside every record is ``(asset_id, vector_id)`` — the
shared cross-backend contract — so results stay bit-identical to the
row and packed layouts.
"""

from __future__ import annotations

import mmap
import os
import sqlite3
import struct
import threading
import zlib
from typing import Callable, Iterator

import numpy as np

from repro.core.config import DELTA_PARTITION_ID
from repro.core.errors import StorageError
from repro.storage import schema as schema_mod
from repro.storage.backends.base import (
    CHECKSUM_KIND_CODES,
    CHECKSUM_KIND_VECTORS,
    SQLITE_ROW_OVERHEAD_BYTES,
    PartitionPayload,
)
from repro.storage.backends.sqlite_packed import (
    SQLitePackedBackend,
    pack_asset_ids,
    unpack_asset_ids,
)

_VID_DTYPE = np.dtype("<i8")

#: First bytes of every blob record.
RECORD_MAGIC = b"MNB1"

#: Record header: magic, version, kind code, partition id, row count,
#: asset-id-blob bytes, payload bytes, CRC32 of the body (asset-id
#: blob + vector-id array + payload). Vector-id bytes are derived
#: (``row_count * 8`` for vector records, 0 for code records).
RECORD_HEADER = struct.Struct("<4sBBqIIII")

RECORD_VERSION = 1

_KIND_CODE = {CHECKSUM_KIND_VECTORS: 0, CHECKSUM_KIND_CODES: 1}

#: Meta-table key naming the live blob-file generation.
BLOB_GENERATION_META_KEY = "blob_generation"

#: File-offset alignment of every record's payload. Zero padding is
#: inserted between the vector-id array and the payload so the payload
#: begins on a 64-byte file offset; mmap is page-aligned, so that is a
#: 64-byte *memory* alignment. This matters for more than SIMD loads:
#: NumPy flags an array over an unaligned buffer, which routes BLAS
#: GEMMs through different micro-kernels and shifts low-order bits —
#: breaking the cross-backend bit-identical-results contract. The
#: padding is derived from the record's offset and field lengths (the
#: header does not store it) and is excluded from the record CRC, so
#: relocating a record during compaction re-pads without re-stamping.
PAYLOAD_ALIGN = 64


def _payload_pad(payload_file_off: int) -> int:
    """Zero bytes needed to 64-align a payload at this file offset."""
    return -payload_file_off % PAYLOAD_ALIGN


def blob_file_path(db_path: str, gen: int) -> str:
    """The blob file sitting next to ``db_path`` for generation gen."""
    return f"{db_path}.blob.{gen}"


class BlobFileBackend(SQLitePackedBackend):
    """Append-only mmap'd blob file; SQLite metadata + locators.

    Subclasses the packed backend: the delta store, asset locator and
    every partition-level mutation algorithm are identical — only the
    physical home of the packed bytes changes, so this class overrides
    exactly the blob plumbing (`_load_rows`/`_write_rows`/…) plus the
    partition readers, and inherits the rest.
    """

    kind = "blobfile"
    shared_connection = False
    file_backed = True
    serves_mmap_views = True

    def __init__(self, path: str, config) -> None:
        super().__init__(path, config)
        self._gen = 0
        self._append_fh = None
        self._append_dirty = False
        #: gen -> (mmap | None, mapped size); maps are only dropped
        #: two generations back, so readers whose SQLite snapshot
        #: predates a compaction can still resolve old-gen records
        #: (the unlinked file stays readable through its mapping).
        self._maps: dict[int, tuple[mmap.mmap | None, int]] = {}
        self._map_lock = threading.Lock()
        self._pending_gen: int | None = None
        # Telemetry counters, exported by the engine as gauges.
        self.appends_total = 0
        self.appended_bytes_total = 0
        self.compactions_total = 0
        self.mmap_bytes_served_total = 0

    # ------------------------------------------------------------------
    # Open / schema / lifecycle
    # ------------------------------------------------------------------

    def validate_stored_kind(self, conn: sqlite3.Connection) -> None:
        super().validate_stored_kind(conn)
        self._load_generation(conn)
        self._sweep_stale_generations()

    def create_layout_tables(
        self, conn: sqlite3.Connection, use_quantization: bool
    ) -> None:
        conn.execute(schema_mod.PACKED_DELTA_TABLE)
        conn.execute(schema_mod.PACKED_LOCATOR_TABLE)
        conn.execute(schema_mod.BLOB_LOCATOR_TABLE)

    def before_commit(self, label: str) -> None:
        """Make this transaction's appends durable before COMMIT.

        The locator rows become visible at COMMIT; the bytes they
        point at must already be on disk by then, so a post-commit
        crash can never expose a reference to unwritten data.
        """
        if self._append_dirty and self._append_fh is not None:
            self._append_fh.flush()
            os.fsync(self._append_fh.fileno())
            self._append_dirty = False

    def after_commit(self, label: str) -> None:
        if label == "compact" and self._pending_gen is not None:
            self._switch_generation(self._pending_gen)
            self._pending_gen = None

    def shutdown(self) -> None:
        if self._append_fh is not None:
            try:
                self._append_fh.close()
            except OSError:
                pass
            self._append_fh = None
        with self._map_lock:
            for mapping, _size in self._maps.values():
                if mapping is not None:
                    try:
                        mapping.close()
                    except (BufferError, OSError):
                        # Views exported to still-cached NumPy arrays
                        # keep the mapping alive; dropping our
                        # reference lets GC reclaim it when they die.
                        pass
            self._maps.clear()
        self._pending_gen = None

    def _load_generation(self, conn: sqlite3.Connection) -> None:
        has_meta = conn.execute(
            "SELECT 1 FROM sqlite_master "
            "WHERE type='table' AND name='meta'"
        ).fetchone()
        gen = 0
        if has_meta is not None:
            row = conn.execute(
                "SELECT value FROM meta WHERE key=?",
                (BLOB_GENERATION_META_KEY,),
            ).fetchone()
            if row is not None:
                try:
                    gen = int(row[0])
                except ValueError:
                    raise StorageError(
                        f"meta key {BLOB_GENERATION_META_KEY!r} holds "
                        f"{row[0]!r}, expected an integer generation"
                    ) from None
        self._gen = gen

    def _sweep_stale_generations(self) -> None:
        """Remove blob files of other generations (crash leftovers).

        A crash before a compaction's commit strands generation N+1;
        a crash right after strands generation N. Either way exactly
        one generation is referenced by the committed locators — the
        one named by the meta key — and every other file is garbage.
        """
        directory = os.path.dirname(self._path) or "."
        prefix = os.path.basename(self._path) + ".blob."
        current = f"{prefix}{self._gen}"
        try:
            names = os.listdir(directory)
        except OSError:
            return
        for name in names:
            if not name.startswith(prefix) or name == current:
                continue
            if name[len(prefix):].isdigit():
                try:
                    os.remove(os.path.join(directory, name))
                except OSError:
                    pass

    # ------------------------------------------------------------------
    # Blob file: append + mmap views
    # ------------------------------------------------------------------

    def blob_path(self, gen: int | None = None) -> str:
        return blob_file_path(
            self._path, self._gen if gen is None else gen
        )

    def _append_handle(self):
        if self._append_fh is None:
            self._append_fh = open(self.blob_path(), "ab")
        return self._append_fh

    def _append_record(
        self,
        kind: str,
        partition_id: int,
        row_count: int,
        ids_blob: bytes,
        vids_blob: bytes,
        payload: bytes,
    ) -> tuple[int, int]:
        """Append one record; return its (offset, total length).

        The bytes are flushed to the OS immediately — same-transaction
        re-reads (checksum stamping) go through the mmap — but only
        fsynced once per transaction, in :meth:`before_commit`.
        """
        crc = zlib.crc32(ids_blob)
        crc = zlib.crc32(vids_blob, crc)
        crc = zlib.crc32(payload, crc)
        header = RECORD_HEADER.pack(
            RECORD_MAGIC,
            RECORD_VERSION,
            _KIND_CODE[kind],
            partition_id,
            row_count,
            len(ids_blob),
            len(payload),
            crc,
        )
        fh = self._append_handle()
        offset = os.fstat(fh.fileno()).st_size
        pad = _payload_pad(
            offset + RECORD_HEADER.size + len(ids_blob) + len(vids_blob)
        )
        fh.write(header)
        fh.write(ids_blob)
        if vids_blob:
            fh.write(vids_blob)
        if pad:
            fh.write(b"\x00" * pad)
        fh.write(payload)
        fh.flush()
        self._append_dirty = True
        length = (
            RECORD_HEADER.size
            + len(ids_blob) + len(vids_blob) + pad + len(payload)
        )
        self.appends_total += 1
        self.appended_bytes_total += length
        return offset, length

    def _view(self, gen: int, offset: int, length: int) -> memoryview:
        """A zero-copy view over one record's bytes."""
        with self._map_lock:
            entry = self._maps.get(gen)
            if entry is None or offset + length > entry[1]:
                entry = self._remap_locked(gen)
            mapping, size = entry
            if mapping is None or offset + length > size:
                raise StorageError(
                    f"blob record at gen {gen} offset {offset} "
                    f"(+{length} bytes) extends past the end of "
                    f"{self.blob_path(gen)!r} ({size} bytes mapped)"
                )
            return memoryview(mapping)[offset : offset + length]

    def _remap_locked(self, gen: int) -> tuple[mmap.mmap | None, int]:
        """(Re)map one generation's file at its current size."""
        path = self.blob_path(gen)
        try:
            size = os.path.getsize(path)
        except OSError:
            size = 0
        if size == 0:
            entry: tuple[mmap.mmap | None, int] = (None, 0)
        else:
            with open(path, "rb") as fh:
                entry = (
                    mmap.mmap(
                        fh.fileno(), size, access=mmap.ACCESS_READ
                    ),
                    size,
                )
        # The superseded mapping may have exported views; dropping the
        # reference (not close()) lets them keep it alive until GC.
        self._maps[gen] = entry
        return entry

    def drop_mappings(self) -> None:
        """Forget every cached mapping; the next read remaps.

        Test hook for out-of-band file mutation (fault injection):
        a shrunk file must be re-stat'ed, not served from a mapping
        sized before the mutation.
        """
        with self._map_lock:
            self._maps.clear()

    def _switch_generation(self, new_gen: int) -> None:
        """Install a compacted generation and retire the old file."""
        old_gen = self._gen
        old_path = self.blob_path(old_gen)
        if self._append_fh is not None:
            try:
                self._append_fh.close()
            except OSError:
                pass
            self._append_fh = None
        with self._map_lock:
            # Map the retiring file at full size first: readers whose
            # snapshot predates the swap still resolve old-gen
            # records through this mapping even after the unlink.
            self._remap_locked(old_gen)
            for gen in list(self._maps):
                if gen not in (old_gen, new_gen):
                    self._maps.pop(gen)
        self._gen = new_gen
        self.compactions_total += 1
        try:
            os.remove(old_path)
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Records
    # ------------------------------------------------------------------

    def _locator_row(
        self, conn: sqlite3.Connection, partition_id: int, kind: str
    ) -> tuple[int, int, int, int] | None:
        row = conn.execute(
            "SELECT gen, offset, length, row_count FROM blob_locator "
            "WHERE partition_id=? AND kind=?",
            (partition_id, kind),
        ).fetchone()
        if row is None:
            return None
        return int(row[0]), int(row[1]), int(row[2]), int(row[3])

    def _parse_record(
        self,
        partition_id: int,
        kind: str,
        view: memoryview,
        row_count: int,
        offset: int,
    ) -> tuple[int, int, int]:
        """Validate the header; return (ids_off, vids_off, payload_off)
        relative offsets plus implicit lengths via the header fields.
        ``offset`` is the record's absolute file offset — the payload
        alignment padding is a function of it (see ``PAYLOAD_ALIGN``).
        """
        if len(view) < RECORD_HEADER.size:
            raise StorageError(
                f"blob record of partition {partition_id} ({kind}): "
                f"{len(view)} bytes is shorter than the header"
            )
        magic, version, kind_code, pid, count, ids_nbytes, \
            payload_nbytes, _crc = RECORD_HEADER.unpack_from(view, 0)
        if magic != RECORD_MAGIC or version != RECORD_VERSION:
            raise StorageError(
                f"blob record of partition {partition_id} ({kind}): "
                "bad magic/version (torn or corrupt record)"
            )
        vids_nbytes = (
            count * 8 if kind == CHECKSUM_KIND_VECTORS else 0
        )
        data_end = RECORD_HEADER.size + ids_nbytes + vids_nbytes
        pad = _payload_pad(offset + data_end)
        if (
            kind_code != _KIND_CODE[kind]
            or pid != partition_id
            or count != row_count
            or data_end + pad + payload_nbytes != len(view)
        ):
            raise StorageError(
                f"blob record of partition {partition_id} ({kind}): "
                "header disagrees with the locator row"
            )
        ids_off = RECORD_HEADER.size
        vids_off = ids_off + ids_nbytes
        return ids_off, vids_off, data_end + pad

    def _record_crc_ok(self, view: memoryview, offset: int) -> bool:
        """CRC the record body (ids + vector ids + payload, pad
        excluded — padding is placement-dependent, data is not)."""
        (_m, _v, kind_code, _p, count, ids_nbytes, _pl, crc) = (
            RECORD_HEADER.unpack_from(view, 0)
        )
        vids_nbytes = count * 8 if kind_code == 0 else 0
        data_end = RECORD_HEADER.size + ids_nbytes + vids_nbytes
        pad = _payload_pad(offset + data_end)
        calc = zlib.crc32(view[RECORD_HEADER.size:data_end])
        calc = zlib.crc32(view[data_end + pad:], calc)
        return calc == crc

    def _write_locator(
        self,
        conn: sqlite3.Connection,
        partition_id: int,
        kind: str,
        offset: int,
        length: int,
        row_count: int,
    ) -> None:
        conn.execute(
            "INSERT OR REPLACE INTO blob_locator "
            "(partition_id, kind, gen, offset, length, row_count) "
            "VALUES (?, ?, ?, ?, ?, ?)",
            (partition_id, kind, self._gen, offset, length, row_count),
        )

    # ------------------------------------------------------------------
    # Blob plumbing (the packed backend's extension points)
    # ------------------------------------------------------------------

    def _load_rows(
        self, conn: sqlite3.Connection, partition_id: int
    ) -> dict[str, tuple[int, bytes]]:
        loc = self._locator_row(
            conn, partition_id, CHECKSUM_KIND_VECTORS
        )
        if loc is None:
            return {}
        gen, offset, length, count = loc
        view = self._view(gen, offset, length)
        ids_off, vids_off, payload_off = self._parse_record(
            partition_id, CHECKSUM_KIND_VECTORS, view, count, offset
        )
        asset_ids = unpack_asset_ids(
            bytes(view[ids_off:vids_off]), count
        )
        vector_ids = np.frombuffer(
            view, dtype=_VID_DTYPE, count=count, offset=vids_off
        )
        width = self._row_bytes
        return {
            asset_ids[i]: (
                int(vector_ids[i]),
                bytes(
                    view[
                        payload_off + i * width
                        : payload_off + (i + 1) * width
                    ]
                ),
            )
            for i in range(count)
        }

    def _write_rows(
        self,
        conn: sqlite3.Connection,
        partition_id: int,
        rows: dict[str, tuple[int, bytes]],
    ) -> None:
        if not rows:
            conn.execute(
                "DELETE FROM blob_locator "
                "WHERE partition_id=? AND kind=?",
                (partition_id, CHECKSUM_KIND_VECTORS),
            )
            return
        ordered = sorted(rows.items())
        ids_blob = pack_asset_ids(aid for aid, _ in ordered)
        vids_blob = np.array(
            [vid for _, (vid, _) in ordered], dtype=_VID_DTYPE
        ).tobytes()
        payload = b"".join(blob for _, (_, blob) in ordered)
        offset, length = self._append_record(
            CHECKSUM_KIND_VECTORS,
            partition_id,
            len(ordered),
            ids_blob,
            vids_blob,
            payload,
        )
        self._write_locator(
            conn,
            partition_id,
            CHECKSUM_KIND_VECTORS,
            offset,
            length,
            len(ordered),
        )
        conn.executemany(
            "INSERT OR REPLACE INTO vector_locator "
            "(asset_id, partition_id, vector_id, row_index) "
            "VALUES (?, ?, ?, ?)",
            [
                (aid, partition_id, vid, index)
                for index, (aid, (vid, _)) in enumerate(ordered)
            ],
        )

    def _load_codes(
        self, conn: sqlite3.Connection, partition_id: int
    ) -> dict[str, bytes]:
        loc = self._locator_row(conn, partition_id, CHECKSUM_KIND_CODES)
        if loc is None:
            return {}
        gen, offset, length, count = loc
        view = self._view(gen, offset, length)
        ids_off, vids_off, payload_off = self._parse_record(
            partition_id, CHECKSUM_KIND_CODES, view, count, offset
        )
        asset_ids = unpack_asset_ids(
            bytes(view[ids_off:vids_off]), count
        )
        width = self._code_bytes
        return {
            asset_ids[i]: bytes(
                view[
                    payload_off + i * width
                    : payload_off + (i + 1) * width
                ]
            )
            for i in range(count)
        }

    def _write_codes(
        self,
        conn: sqlite3.Connection,
        partition_id: int,
        codes: dict[str, bytes],
    ) -> None:
        if not codes:
            conn.execute(
                "DELETE FROM blob_locator "
                "WHERE partition_id=? AND kind=?",
                (partition_id, CHECKSUM_KIND_CODES),
            )
            return
        ordered = sorted(codes.items())
        ids_blob = pack_asset_ids(aid for aid, _ in ordered)
        payload = b"".join(blob for _, blob in ordered)
        offset, length = self._append_record(
            CHECKSUM_KIND_CODES, partition_id, len(ordered),
            ids_blob, b"", payload,
        )
        self._write_locator(
            conn,
            partition_id,
            CHECKSUM_KIND_CODES,
            offset,
            length,
            len(ordered),
        )

    # ------------------------------------------------------------------
    # Partition reads (zero-copy)
    # ------------------------------------------------------------------

    def read_partition(
        self, conn: sqlite3.Connection, partition_id: int
    ) -> PartitionPayload:
        if partition_id == DELTA_PARTITION_ID:
            return super().read_partition(conn, partition_id)
        loc = self._locator_row(
            conn, partition_id, CHECKSUM_KIND_VECTORS
        )
        if loc is None:
            return PartitionPayload((), (), [], None, 0)
        gen, offset, length, count = loc
        view = self._view(gen, offset, length)
        ids_off, vids_off, payload_off = self._parse_record(
            partition_id, CHECKSUM_KIND_VECTORS, view, count, offset
        )
        asset_ids = unpack_asset_ids(
            bytes(view[ids_off:vids_off]), count
        )
        vector_ids = tuple(
            int(v)
            for v in np.frombuffer(
                view, dtype=_VID_DTYPE, count=count, offset=vids_off
            )
        )
        self.mmap_bytes_served_total += length
        return PartitionPayload(
            asset_ids=asset_ids,
            vector_ids=vector_ids,
            blobs=None,
            packed=view[payload_off:],
            stored_bytes=length,
        )

    def read_partition_codes(
        self, conn: sqlite3.Connection, partition_id: int
    ) -> PartitionPayload:
        if partition_id == DELTA_PARTITION_ID:
            return PartitionPayload((), (), [], None, 0)
        loc = self._locator_row(conn, partition_id, CHECKSUM_KIND_CODES)
        if loc is None:
            return PartitionPayload((), (), [], None, 0)
        gen, offset, length, count = loc
        view = self._view(gen, offset, length)
        ids_off, vids_off, payload_off = self._parse_record(
            partition_id, CHECKSUM_KIND_CODES, view, count, offset
        )
        asset_ids = unpack_asset_ids(
            bytes(view[ids_off:vids_off]), count
        )
        self.mmap_bytes_served_total += length
        return PartitionPayload(
            asset_ids=asset_ids,
            vector_ids=(0,) * count,
            blobs=None,
            packed=view[payload_off:],
            stored_bytes=length,
        )

    def _slice_vector(
        self, conn: sqlite3.Connection, pid: int, row_index: int
    ) -> bytes | None:
        """Read ONE row as an offset slice of the mapping."""
        loc = self._locator_row(conn, pid, CHECKSUM_KIND_VECTORS)
        if loc is None:
            return None
        gen, offset, length, count = loc
        if not 0 <= row_index < count:
            return None
        view = self._view(gen, offset, length)
        _ids_off, _vids_off, payload_off = self._parse_record(
            pid, CHECKSUM_KIND_VECTORS, view, count, offset
        )
        width = self._row_bytes
        self.mmap_bytes_served_total += width
        return bytes(
            view[
                payload_off + row_index * width
                : payload_off + (row_index + 1) * width
            ]
        )

    # ------------------------------------------------------------------
    # Rewrites / iteration over the blob-resident tables
    # ------------------------------------------------------------------

    def rewrite_codes(
        self,
        conn: sqlite3.Connection,
        encode_blobs: Callable[[list[bytes]], list[bytes]],
        batch_size: int,
    ) -> int:
        conn.execute(
            "DELETE FROM blob_locator WHERE kind=?",
            (CHECKSUM_KIND_CODES,),
        )
        written = 0
        pids = [
            int(r[0])
            for r in conn.execute(
                "SELECT partition_id FROM blob_locator WHERE kind=? "
                "ORDER BY partition_id",
                (CHECKSUM_KIND_VECTORS,),
            ).fetchall()
        ]
        width = self._row_bytes
        for pid in pids:
            loc = self._locator_row(conn, pid, CHECKSUM_KIND_VECTORS)
            gen, offset, length, count = loc
            view = self._view(gen, offset, length)
            ids_off, vids_off, payload_off = self._parse_record(
                pid, CHECKSUM_KIND_VECTORS, view, count, offset
            )
            blobs = [
                bytes(
                    view[
                        payload_off + i * width
                        : payload_off + (i + 1) * width
                    ]
                )
                for i in range(count)
            ]
            code_parts: list[bytes] = []
            for start in range(0, count, batch_size):
                code_parts.extend(
                    encode_blobs(blobs[start : start + batch_size])
                )
            ids_blob = bytes(view[ids_off:vids_off])
            code_off, code_len = self._append_record(
                CHECKSUM_KIND_CODES, pid, count, ids_blob, b"",
                b"".join(code_parts),
            )
            self._write_locator(
                conn, pid, CHECKSUM_KIND_CODES, code_off, code_len,
                count,
            )
            written += count
        return written

    def drop_partition(
        self,
        conn: sqlite3.Connection,
        partition_id: int,
        use_quantization: bool,
    ) -> int:
        loc = self._locator_row(
            conn, partition_id, CHECKSUM_KIND_VECTORS
        )
        dropped = 0 if loc is None else loc[3]
        conn.execute(
            "DELETE FROM blob_locator WHERE partition_id=?",
            (partition_id,),
        )
        conn.execute(
            "DELETE FROM vector_locator WHERE partition_id=?",
            (partition_id,),
        )
        return dropped

    def iter_row_batches(
        self,
        conn: sqlite3.Connection,
        include_delta: bool,
        batch_size: int,
    ) -> Iterator[tuple[list[str], list[bytes], int]]:
        buf_ids: list[str] = []
        buf_blobs: list[bytes] = []

        def flush(force: bool):
            while len(buf_ids) >= batch_size or (force and buf_ids):
                ids = buf_ids[:batch_size]
                blobs = buf_blobs[:batch_size]
                del buf_ids[:batch_size]
                del buf_blobs[:batch_size]
                stored = sum(
                    len(b) for b in blobs
                ) + SQLITE_ROW_OVERHEAD_BYTES * len(ids)
                yield ids, blobs, stored

        if include_delta:
            cursor = conn.execute(
                "SELECT asset_id, vector FROM delta_vectors "
                "ORDER BY asset_id, vector_id"
            )
            while True:
                rows = cursor.fetchmany(batch_size)
                if not rows:
                    break
                for aid, blob in rows:
                    buf_ids.append(aid)
                    buf_blobs.append(blob)
                yield from flush(force=False)
        width = self._row_bytes
        pids = [
            int(r[0])
            for r in conn.execute(
                "SELECT partition_id FROM blob_locator WHERE kind=? "
                "ORDER BY partition_id",
                (CHECKSUM_KIND_VECTORS,),
            ).fetchall()
        ]
        for pid in pids:
            loc = self._locator_row(conn, pid, CHECKSUM_KIND_VECTORS)
            if loc is None:
                continue
            gen, offset, length, count = loc
            view = self._view(gen, offset, length)
            ids_off, vids_off, payload_off = self._parse_record(
                pid, CHECKSUM_KIND_VECTORS, view, count, offset
            )
            asset_ids = unpack_asset_ids(
                bytes(view[ids_off:vids_off]), count
            )
            for i in range(count):
                buf_ids.append(asset_ids[i])
                buf_blobs.append(
                    bytes(
                        view[
                            payload_off + i * width
                            : payload_off + (i + 1) * width
                        ]
                    )
                )
            yield from flush(force=False)
        yield from flush(force=True)

    def partition_sizes(
        self, conn: sqlite3.Connection, include_delta: bool
    ) -> dict[int, int]:
        rows = conn.execute(
            "SELECT partition_id, row_count FROM blob_locator "
            "WHERE kind=?",
            (CHECKSUM_KIND_VECTORS,),
        ).fetchall()
        sizes = {int(pid): int(count) for pid, count in rows}
        if include_delta:
            delta = self.delta_size(conn)
            if delta:
                sizes[DELTA_PARTITION_ID] = delta
        return sizes

    def count_codes(self, conn: sqlite3.Connection) -> int:
        cur = conn.execute(
            "SELECT COALESCE(SUM(row_count), 0) FROM blob_locator "
            "WHERE kind=?",
            (CHECKSUM_KIND_CODES,),
        )
        return int(cur.fetchone()[0])

    # ------------------------------------------------------------------
    # Dead-byte accounting + compaction
    # ------------------------------------------------------------------

    def dead_bytes(self, conn: sqlite3.Connection) -> tuple[int, int]:
        """(dead bytes, total blob-file bytes) of the live generation.

        Dead bytes are everything the locators do not reference:
        superseded records, rolled-back appends, and records of
        dropped partitions.
        """
        try:
            total = os.path.getsize(self.blob_path())
        except OSError:
            total = 0
        live = int(
            conn.execute(
                "SELECT COALESCE(SUM(length), 0) FROM blob_locator "
                "WHERE gen=?",
                (self._gen,),
            ).fetchone()[0]
        )
        return max(0, total - live), total

    def compact(self, conn: sqlite3.Connection) -> int:
        """Copy live records into generation N+1; return bytes freed.

        Must run inside a write transaction labelled ``"compact"``:
        the locator updates and the ``blob_generation`` bump commit
        atomically, and :meth:`after_commit` performs the swap (close
        old handles, unlink the retired file). A crash on either side
        of the commit leaves exactly one referenced generation.
        """
        new_gen = self._gen + 1
        new_path = self.blob_path(new_gen)
        rows = conn.execute(
            "SELECT partition_id, kind, gen, offset, length "
            "FROM blob_locator ORDER BY offset"
        ).fetchall()
        _dead, old_total = self.dead_bytes(conn)
        new_offset = 0
        updates: list[tuple[int, int, int, int, str]] = []
        with open(new_path, "wb") as out:
            for pid, kind, gen, offset, length in rows:
                view = self._view(int(gen), int(offset), int(length))
                if not self._record_crc_ok(view, int(offset)):
                    raise StorageError(
                        f"blob record of partition {pid} ({kind}) "
                        "fails its CRC; refusing to compact — run "
                        "scrub/repair first"
                    )
                # Relocation changes the alignment padding between the
                # id arrays and the payload (it is a function of the
                # record's file offset), so re-pad instead of copying
                # the record verbatim. The CRC covers only real data
                # and survives the move unchanged.
                (_m, _v, kind_code, _p, count, ids_nbytes, _pl, _crc) = (
                    RECORD_HEADER.unpack_from(view, 0)
                )
                vids_nbytes = count * 8 if kind_code == 0 else 0
                data_end = (
                    RECORD_HEADER.size + ids_nbytes + vids_nbytes
                )
                old_pad = _payload_pad(int(offset) + data_end)
                new_pad = _payload_pad(new_offset + data_end)
                out.write(view[:data_end])
                if new_pad:
                    out.write(b"\x00" * new_pad)
                out.write(view[data_end + old_pad:])
                new_length = int(length) - old_pad + new_pad
                updates.append(
                    (new_gen, new_offset, new_length, int(pid), str(kind))
                )
                new_offset += new_length
            out.flush()
            os.fsync(out.fileno())
        conn.executemany(
            "UPDATE blob_locator SET gen=?, offset=?, length=? "
            "WHERE partition_id=? AND kind=?",
            updates,
        )
        conn.execute(
            "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
            (BLOB_GENERATION_META_KEY, str(new_gen)),
        )
        self._pending_gen = new_gen
        return max(0, old_total - new_offset)

    def blob_stats(self) -> dict[str, int]:
        """Counters for the telemetry gauges (appends/compactions/…)."""
        return {
            "appends": self.appends_total,
            "appended_bytes": self.appended_bytes_total,
            "compactions": self.compactions_total,
            "mmap_bytes_served": self.mmap_bytes_served_total,
        }

    # ------------------------------------------------------------------
    # Integrity
    # ------------------------------------------------------------------

    def integrity_problems(
        self,
        conn: sqlite3.Connection,
        use_quantization: bool,
        quantizer_trained: bool,
    ) -> list[str]:
        problems: list[str] = []
        for (line,) in conn.execute("PRAGMA integrity_check"):
            if line != "ok":
                problems.append(f"sqlite: {line}")
        orphans = conn.execute(
            "SELECT COALESCE(SUM(b.row_count), 0) FROM blob_locator b "
            "WHERE b.kind=? AND NOT EXISTS (SELECT 1 FROM centroids c "
            "WHERE c.partition_id = b.partition_id)",
            (CHECKSUM_KIND_VECTORS,),
        ).fetchone()[0]
        if orphans:
            problems.append(
                f"{orphans} vectors assigned to partitions "
                "with no centroid"
            )
        drift = conn.execute(
            "SELECT c.partition_id, c.vector_count, "
            "COALESCE(b.row_count, 0) FROM centroids c "
            "LEFT JOIN blob_locator b "
            "ON b.partition_id = c.partition_id AND b.kind=? "
            "WHERE COALESCE(b.row_count, 0) > c.vector_count",
            (CHECKSUM_KIND_VECTORS,),
        ).fetchall()
        for pid, recorded, actual in drift:
            problems.append(
                f"partition {pid}: centroid records {recorded} "
                f"vectors, table holds {actual}"
            )
        locator_rows = conn.execute(
            "SELECT COUNT(*) FROM vector_locator"
        ).fetchone()[0]
        blob_rows = conn.execute(
            "SELECT COALESCE(SUM(row_count), 0) FROM blob_locator "
            "WHERE kind=?",
            (CHECKSUM_KIND_VECTORS,),
        ).fetchone()[0]
        delta_rows = self.delta_size(conn)
        if int(locator_rows) != int(blob_rows) + delta_rows:
            problems.append(
                f"vector_locator holds {locator_rows} rows but "
                f"partitions hold {int(blob_rows) + delta_rows}"
            )
        # Every record must parse, sit inside its file, and pass its
        # own CRC — the blob file is self-describing on purpose.
        for pid, kind, gen, offset, length, count in conn.execute(
            "SELECT partition_id, kind, gen, offset, length, "
            "row_count FROM blob_locator"
        ).fetchall():
            try:
                view = self._view(int(gen), int(offset), int(length))
                self._parse_record(
                    int(pid), str(kind), view, int(count), int(offset)
                )
            except StorageError as exc:
                problems.append(str(exc))
                continue
            if not self._record_crc_ok(view, int(offset)):
                problems.append(
                    f"blob record of partition {pid} ({kind}) fails "
                    "its stamped CRC"
                )
        if use_quantization and quantizer_trained:
            uncoded = conn.execute(
                "SELECT COALESCE(SUM(v.row_count - "
                "COALESCE(c.row_count, 0)), 0) "
                "FROM blob_locator v LEFT JOIN blob_locator c "
                "ON c.partition_id = v.partition_id AND c.kind=? "
                "WHERE v.kind=? "
                "AND v.row_count > COALESCE(c.row_count, 0)",
                (CHECKSUM_KIND_CODES, CHECKSUM_KIND_VECTORS),
            ).fetchone()[0]
            if uncoded:
                problems.append(
                    f"{uncoded} indexed vectors have no "
                    "quantized code (invisible to quantized "
                    "scans; rebuild the index to re-encode)"
                )
        if use_quantization:
            stale = conn.execute(
                "SELECT COALESCE(SUM(c.row_count), 0) "
                "FROM blob_locator c "
                "WHERE c.kind=? "
                "AND NOT EXISTS (SELECT 1 FROM blob_locator v "
                "WHERE v.partition_id = c.partition_id AND v.kind=?)",
                (CHECKSUM_KIND_CODES, CHECKSUM_KIND_VECTORS),
            ).fetchone()[0]
            if stale:
                problems.append(
                    f"{stale} quantized code rows do not match any "
                    "vector row"
                )
        return problems
