"""Row-per-vector SQLite layout — the paper's physical design (§3.2).

Every statement here is the engine's original SQL, verbatim: the
clustered ``vectors`` table keyed ``(partition_id, asset_id,
vector_id)``, the parallel ``vector_codes`` table for quantized scan
codes, and the unique asset-id secondary indexes. A database created
by this backend is byte-identical to one created before the backend
abstraction existed, and opens interchangeably.

The layout logic lives in :class:`RowLayoutSQL` so the memory backend
(same tables, different connection strategy) can reuse it unchanged.
"""

from __future__ import annotations

import sqlite3
from typing import Callable, Iterator, Sequence

from repro.core.config import DELTA_PARTITION_ID
from repro.storage import schema as schema_mod
from repro.storage.backends.base import (
    SQLITE_ROW_OVERHEAD_BYTES,
    PartitionPayload,
    SQLiteFileConnectionsMixin,
    StorageBackend,
)
from repro.storage.cache import ROW_ID_OVERHEAD_BYTES

#: Per-row accounting constant: decoded-entry overhead (id + vector-id
#: bookkeeping) plus the SQLite b-tree key/record overhead. Partition
#: reads of n rows charge ``payload + 40 * n`` — the formula every
#: previous version of the engine used.
_FULL_ROW_OVERHEAD = ROW_ID_OVERHEAD_BYTES + SQLITE_ROW_OVERHEAD_BYTES


class RowLayoutSQL(StorageBackend):
    """The row-per-vector table layout, connection strategy left open."""

    def create_layout_tables(
        self, conn: sqlite3.Connection, use_quantization: bool
    ) -> None:
        conn.execute(schema_mod.VECTORS_TABLE)
        conn.execute(schema_mod.VECTORS_ASSET_INDEX)
        if use_quantization:
            conn.execute(schema_mod.VECTOR_CODES_TABLE)
            conn.execute(schema_mod.CODES_ASSET_INDEX)

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def remove_assets(
        self,
        conn: sqlite3.Connection,
        asset_ids: Sequence[str],
        drop_codes: bool,
    ) -> int:
        deleted = 0
        for asset_id in asset_ids:
            cur = conn.execute(
                "DELETE FROM vectors WHERE asset_id=?", (asset_id,)
            )
            if cur.rowcount > 0:
                deleted += cur.rowcount
            if drop_codes:
                conn.execute(
                    "DELETE FROM vector_codes WHERE asset_id=?",
                    (asset_id,),
                )
        return deleted

    def insert_delta_rows(
        self,
        conn: sqlite3.Connection,
        rows: Sequence[tuple[str, int, bytes]],
    ) -> None:
        conn.executemany(
            "INSERT INTO vectors "
            "(partition_id, asset_id, vector_id, vector) "
            "VALUES (?, ?, ?, ?)",
            [
                (DELTA_PARTITION_ID, asset_id, vector_id, blob)
                for asset_id, vector_id, blob in rows
            ],
        )

    def apply_assignments(
        self,
        conn: sqlite3.Connection,
        moves: Sequence[tuple[str, int]],
        code_rows: Sequence[tuple[int, str, int, bytes]] | None,
        use_quantization: bool,
    ) -> None:
        conn.executemany(
            "UPDATE vectors SET partition_id=? WHERE asset_id=?",
            [(pid, asset_id) for asset_id, pid in moves],
        )
        if use_quantization:
            # Codes are clustered by partition id exactly like the
            # float rows; a move must rewrite both or the quantized
            # scan would miss the vector.
            conn.executemany(
                "UPDATE vector_codes SET partition_id=? "
                "WHERE asset_id=?",
                [(pid, asset_id) for asset_id, pid in moves],
            )
        if code_rows:
            conn.executemany(
                "INSERT OR REPLACE INTO vector_codes "
                "(partition_id, asset_id, vector_id, code) "
                "VALUES (?, ?, ?, ?)",
                list(code_rows),
            )

    def rewrite_codes(
        self,
        conn: sqlite3.Connection,
        encode_blobs: Callable[[list[bytes]], list[bytes]],
        batch_size: int,
    ) -> int:
        written = 0
        conn.execute("DELETE FROM vector_codes")
        cursor = conn.execute(
            "SELECT partition_id, asset_id, vector_id, vector "
            "FROM vectors WHERE partition_id != ? "
            "ORDER BY partition_id, asset_id, vector_id",
            (DELTA_PARTITION_ID,),
        )
        while True:
            rows = cursor.fetchmany(batch_size)
            if not rows:
                break
            blobs = encode_blobs([r[3] for r in rows])
            conn.executemany(
                "INSERT INTO vector_codes "
                "(partition_id, asset_id, vector_id, code) "
                "VALUES (?, ?, ?, ?)",
                [
                    (int(r[0]), r[1], int(r[2]), blob)
                    for r, blob in zip(rows, blobs)
                ],
            )
            written += len(rows)
        return written

    def drop_partition(
        self,
        conn: sqlite3.Connection,
        partition_id: int,
        use_quantization: bool,
    ) -> int:
        cur = conn.execute(
            "DELETE FROM vectors WHERE partition_id=?", (partition_id,)
        )
        dropped = max(0, cur.rowcount)
        if use_quantization:
            conn.execute(
                "DELETE FROM vector_codes WHERE partition_id=?",
                (partition_id,),
            )
        return dropped

    def partitions_of(
        self, conn: sqlite3.Connection, asset_ids: Sequence[str]
    ) -> set[int]:
        out: set[int] = set()
        ids = list(asset_ids)
        for start in range(0, len(ids), 500):
            chunk = ids[start : start + 500]
            placeholders = ", ".join("?" for _ in chunk)
            rows = conn.execute(
                "SELECT DISTINCT partition_id FROM vectors "
                f"WHERE asset_id IN ({placeholders})",
                chunk,
            ).fetchall()
            out.update(int(r[0]) for r in rows)
        return out

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def read_partition(
        self, conn: sqlite3.Connection, partition_id: int
    ) -> PartitionPayload:
        rows = conn.execute(
            "SELECT asset_id, vector_id, vector FROM vectors "
            "WHERE partition_id=? ORDER BY asset_id, vector_id",
            (partition_id,),
        ).fetchall()
        blobs = [r[2] for r in rows]
        stored = sum(len(b) for b in blobs) + _FULL_ROW_OVERHEAD * len(
            rows
        )
        return PartitionPayload(
            asset_ids=tuple(r[0] for r in rows),
            vector_ids=tuple(int(r[1]) for r in rows),
            blobs=blobs,
            packed=None,
            stored_bytes=stored,
        )

    def read_partition_codes(
        self, conn: sqlite3.Connection, partition_id: int
    ) -> PartitionPayload:
        rows = conn.execute(
            "SELECT asset_id, vector_id, code FROM vector_codes "
            "WHERE partition_id=? ORDER BY asset_id, vector_id",
            (partition_id,),
        ).fetchall()
        blobs = [r[2] for r in rows]
        stored = sum(len(b) for b in blobs) + _FULL_ROW_OVERHEAD * len(
            rows
        )
        return PartitionPayload(
            asset_ids=tuple(r[0] for r in rows),
            vector_ids=tuple(int(r[1]) for r in rows),
            blobs=blobs,
            packed=None,
            stored_bytes=stored,
        )

    def fetch_vector_blobs(
        self,
        conn: sqlite3.Connection,
        asset_ids: Sequence[str],
        chunk_size: int,
    ) -> tuple[list[str], list[bytes], int]:
        found: list[str] = []
        blobs: list[bytes] = []
        for start in range(0, len(asset_ids), chunk_size):
            chunk = list(asset_ids[start : start + chunk_size])
            placeholders = ", ".join("?" for _ in chunk)
            rows = conn.execute(
                "SELECT asset_id, vector FROM vectors "
                f"WHERE asset_id IN ({placeholders})",
                chunk,
            ).fetchall()
            for asset_id, blob in rows:
                found.append(asset_id)
                blobs.append(blob)
        stored = sum(
            len(b) for b in blobs
        ) + SQLITE_ROW_OVERHEAD_BYTES * len(found)
        return found, blobs, stored

    def get_vector_blob(
        self, conn: sqlite3.Connection, asset_id: str
    ) -> bytes | None:
        cur = conn.execute(
            "SELECT vector FROM vectors WHERE asset_id=?", (asset_id,)
        )
        row = cur.fetchone()
        return None if row is None else row[0]

    def get_partition_of(
        self, conn: sqlite3.Connection, asset_id: str
    ) -> int | None:
        cur = conn.execute(
            "SELECT partition_id FROM vectors WHERE asset_id=?",
            (asset_id,),
        )
        row = cur.fetchone()
        return None if row is None else int(row[0])

    def iter_row_batches(
        self,
        conn: sqlite3.Connection,
        include_delta: bool,
        batch_size: int,
    ) -> Iterator[tuple[list[str], list[bytes], int]]:
        where = "" if include_delta else "WHERE partition_id != ?"
        params: tuple[object, ...] = (
            () if include_delta else (DELTA_PARTITION_ID,)
        )
        cursor = conn.execute(
            "SELECT asset_id, vector FROM vectors "
            f"{where} ORDER BY partition_id, asset_id, vector_id",
            params,
        )
        while True:
            rows = cursor.fetchmany(batch_size)
            if not rows:
                break
            ids = [r[0] for r in rows]
            blobs = [r[1] for r in rows]
            stored = sum(
                len(b) for b in blobs
            ) + SQLITE_ROW_OVERHEAD_BYTES * len(rows)
            yield ids, blobs, stored

    def all_asset_ids(self, conn: sqlite3.Connection) -> list[str]:
        rows = conn.execute(
            "SELECT asset_id FROM vectors ORDER BY asset_id"
        ).fetchall()
        return [r[0] for r in rows]

    def count_vectors(
        self, conn: sqlite3.Connection, include_delta: bool
    ) -> int:
        if include_delta:
            cur = conn.execute("SELECT COUNT(*) FROM vectors")
        else:
            cur = conn.execute(
                "SELECT COUNT(*) FROM vectors WHERE partition_id != ?",
                (DELTA_PARTITION_ID,),
            )
        return int(cur.fetchone()[0])

    def delta_size(self, conn: sqlite3.Connection) -> int:
        cur = conn.execute(
            "SELECT COUNT(*) FROM vectors WHERE partition_id = ?",
            (DELTA_PARTITION_ID,),
        )
        return int(cur.fetchone()[0])

    def partition_sizes(
        self, conn: sqlite3.Connection, include_delta: bool
    ) -> dict[int, int]:
        where = "" if include_delta else "WHERE partition_id != ?"
        params: tuple[object, ...] = (
            () if include_delta else (DELTA_PARTITION_ID,)
        )
        rows = conn.execute(
            "SELECT partition_id, COUNT(*) FROM vectors "
            f"{where} GROUP BY partition_id",
            params,
        ).fetchall()
        return {int(pid): int(count) for pid, count in rows}

    def count_codes(self, conn: sqlite3.Connection) -> int:
        cur = conn.execute("SELECT COUNT(*) FROM vector_codes")
        return int(cur.fetchone()[0])

    # ------------------------------------------------------------------
    # Integrity
    # ------------------------------------------------------------------

    def integrity_problems(
        self,
        conn: sqlite3.Connection,
        use_quantization: bool,
        quantizer_trained: bool,
    ) -> list[str]:
        problems: list[str] = []
        for (line,) in conn.execute("PRAGMA integrity_check"):
            if line != "ok":
                problems.append(f"sqlite: {line}")
        orphan_rows = conn.execute(
            "SELECT COUNT(*) FROM vectors v WHERE v.partition_id != ? "
            "AND NOT EXISTS (SELECT 1 FROM centroids c "
            "WHERE c.partition_id = v.partition_id)",
            (DELTA_PARTITION_ID,),
        ).fetchone()[0]
        if orphan_rows:
            problems.append(
                f"{orphan_rows} vectors assigned to partitions "
                "with no centroid"
            )
        # Deletes legitimately leave recorded counts above the
        # actual sizes until the next rebuild; the corrupt
        # direction is a partition holding MORE vectors than its
        # centroid ever accounted for (a flush that forgot to
        # update the count).
        drift = conn.execute(
            "SELECT c.partition_id, c.vector_count, COUNT(v.asset_id)"
            " FROM centroids c LEFT JOIN vectors v "
            "ON v.partition_id = c.partition_id "
            "GROUP BY c.partition_id "
            "HAVING COUNT(v.asset_id) > c.vector_count"
        ).fetchall()
        for pid, recorded, actual in drift:
            problems.append(
                f"partition {pid}: centroid records {recorded} "
                f"vectors, table holds {actual}"
            )
        if use_quantization:
            # Once a quantizer is trained, EVERY indexed (non-
            # delta) vector must carry a code row — an uncoded
            # vector in a quantized partition is invisible to the
            # fast scan path (e.g. a crash between an assignment
            # commit and a code rewrite).
            if quantizer_trained:
                uncoded = conn.execute(
                    "SELECT COUNT(*) FROM vectors v "
                    "WHERE v.partition_id != ? "
                    "AND NOT EXISTS (SELECT 1 FROM vector_codes c "
                    "WHERE c.asset_id = v.asset_id "
                    "AND c.partition_id = v.partition_id)",
                    (DELTA_PARTITION_ID,),
                ).fetchone()[0]
                if uncoded:
                    problems.append(
                        f"{uncoded} indexed vectors have no "
                        "quantized code (invisible to quantized "
                        "scans; rebuild the index to re-encode)"
                    )
            # A code row must shadow a float row in the same
            # partition; the delta is never quantized.
            stale = conn.execute(
                "SELECT COUNT(*) FROM vector_codes c "
                "WHERE NOT EXISTS (SELECT 1 FROM vectors v "
                "WHERE v.asset_id = c.asset_id "
                "AND v.partition_id = c.partition_id)"
            ).fetchone()[0]
            if stale:
                problems.append(
                    f"{stale} quantized code rows do not match any "
                    "vector row"
                )
            delta_codes = conn.execute(
                "SELECT COUNT(*) FROM vector_codes "
                "WHERE partition_id = ?",
                (DELTA_PARTITION_ID,),
            ).fetchone()[0]
            if delta_codes:
                problems.append(
                    f"{delta_codes} quantized code rows in the "
                    "delta partition (delta must stay "
                    "full-precision)"
                )
        return problems


class SQLiteRowBackend(SQLiteFileConnectionsMixin, RowLayoutSQL):
    """The default backend: row layout in a WAL-mode SQLite file."""

    kind = "sqlite-row"
    shared_connection = False
    file_backed = True
