"""Fault-injecting storage backend decorator (test infrastructure).

``storage_backend="fault:<inner>"`` (or ``MICRONN_TEST_BACKEND=
fault:<inner>``) wraps any real backend with scripted faults so tests
can prove the engine's crash-safety story instead of asserting it:

- **Crash points.** Every engine write transaction announces its
  commit through :meth:`StorageBackend.before_commit` /
  :meth:`after_commit`; the wrapper counts those commits and raises
  :class:`~repro.core.errors.SimulatedCrash` before or after the Nth
  one. ``SimulatedCrash`` is not a ``MicroNNError``, so it unwinds
  through every library handler exactly like a process kill — a
  pre-commit crash must roll back, a post-commit crash must leave the
  transaction durable.
- **Torn blob writes.** After the Nth commit the wrapper corrupts one
  stored partition blob in place (truncating it, committed outside
  any checksum refresh) and then crashes — modelling post-commit
  media corruption, the failure the checksum layer exists to catch.
- **Transient lock errors.** The next N write-transaction BEGINs
  raise ``sqlite3.OperationalError("database is locked")``, which the
  engine's bounded busy-retry must absorb.

The wrapper registers under the inner backend's ``kind`` (the meta
table and shard manifests record the *real* layout), so a database
written under fault injection reopens cleanly without it.

Controllers are process-global and keyed by database path: a test
arms a :class:`FaultPlan` via :func:`controller_for` and the plan
survives engine reopen — which is exactly what a kill-point sweep
needs (arm, crash, reopen, inspect).
"""

from __future__ import annotations

import os
import sqlite3
import threading
from dataclasses import dataclass

from repro.core.errors import SimulatedCrash
from repro.storage.backends.base import StorageBackend

#: Registry-name prefix selecting this wrapper.
FAULT_PREFIX = "fault:"


@dataclass
class FaultPlan:
    """What to break, and when. Ordinals are 1-based commit counts.

    When ``label`` is set, only commits carrying that label (e.g.
    ``"upsert"``) advance the counter; otherwise every write
    transaction counts.
    """

    #: Raise ``SimulatedCrash`` *before* the Nth commit executes: the
    #: transaction must roll back, so nothing of it may survive.
    crash_before_commit: int | None = None
    #: Raise ``SimulatedCrash`` right *after* the Nth commit: the
    #: transaction is durable but the operation is cut short.
    crash_after_commit: int | None = None
    #: Restrict counting to commits with this label (None = all).
    label: str | None = None
    #: After the Nth commit, truncate one stored partition blob in
    #: place and then crash (post-commit media corruption).
    tear_blob_after_commit: int | None = None
    #: After the Nth commit, truncate the tail of the blobfile
    #: backend's append-only file — tearing the most recently appended
    #: *referenced* record — and then crash. Models the device losing
    #: the tail of a flushed append (a media-level torn write, the one
    #: torn-append case the commit protocol cannot make unreachable).
    #: Only meaningful wrapping the ``blobfile`` backend.
    tear_append_after_commit: int | None = None
    #: Inject this many transient "database is locked" errors on the
    #: next write-transaction BEGINs.
    lock_errors: int = 0


class FaultController:
    """Per-database fault state, surviving engine reopen."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.plan = FaultPlan()
        #: Labels of every commit attempt, in order (pre-commit).
        self.attempted: list[str] = []
        #: Labels of every commit that became durable, in order.
        self.committed: list[str] = []
        #: Matching-label commit count under the current plan.
        self.commits = 0
        #: How many lock errors have been injected so far.
        self.lock_errors_injected = 0

    def arm(self, plan: FaultPlan) -> None:
        """Install a plan and reset the counters (not the history)."""
        with self._lock:
            self.plan = plan
            self.commits = 0
            self.lock_errors_injected = 0

    def disarm(self) -> None:
        self.arm(FaultPlan())

    def reset_history(self) -> None:
        with self._lock:
            self.attempted.clear()
            self.committed.clear()


_CONTROLLERS: dict[str, FaultController] = {}
_CONTROLLERS_LOCK = threading.Lock()


def controller_for(path: str | os.PathLike[str]) -> FaultController:
    """The (shared, process-global) fault controller for a database."""
    key = os.path.abspath(os.fspath(path))
    with _CONTROLLERS_LOCK:
        ctrl = _CONTROLLERS.get(key)
        if ctrl is None:
            ctrl = _CONTROLLERS[key] = FaultController()
        return ctrl


def reset_controllers() -> None:
    """Drop every controller (test isolation)."""
    with _CONTROLLERS_LOCK:
        _CONTROLLERS.clear()


class FaultInjectingBackend(StorageBackend):
    """Decorates a real backend with the faults scripted above.

    Pure delegation for every layout operation — the wrapper never
    changes what is stored, only *whether* an operation is allowed to
    finish — so a database written under fault injection is
    byte-identical to one written without it.
    """

    # The ClassVar defaults are placeholders; every instance shadows
    # them with the wrapped backend's values so the meta table, shard
    # manifests and stats report the real layout.
    kind = "fault"
    shared_connection = False
    file_backed = True

    def __init__(self, path: str, config, inner: StorageBackend) -> None:
        super().__init__(path, config)
        self._inner = inner
        self.kind = inner.kind
        self.shared_connection = inner.shared_connection
        self.file_backed = inner.file_backed
        self.serves_mmap_views = inner.serves_mmap_views
        # The inner backend may serialize internal work on its own
        # writer lock; the engine must adopt that same lock.
        self.writer_lock = inner.writer_lock
        self.controller = controller_for(path)

    @property
    def inner(self) -> StorageBackend:
        return self._inner

    # ------------------------------------------------------------------
    # Fault hooks
    # ------------------------------------------------------------------

    def before_begin_write(self) -> None:
        self._inner.before_begin_write()
        ctrl = self.controller
        with ctrl._lock:
            inject = (
                ctrl.lock_errors_injected < ctrl.plan.lock_errors
            )
            if inject:
                ctrl.lock_errors_injected += 1
        if inject:
            raise sqlite3.OperationalError("database is locked")

    def before_commit(self, label: str) -> None:
        # The inner hook first: a real backend uses it to make its
        # side files durable before COMMIT (the blobfile fsync). A
        # scripted pre-commit crash then still models a process kill
        # with everything flushed — the transaction must roll back and
        # any flushed-but-unreferenced bytes must be harmless.
        self._inner.before_commit(label)
        ctrl = self.controller
        with ctrl._lock:
            ctrl.attempted.append(label)
            plan = ctrl.plan
            if plan.label is not None and plan.label != label:
                return
            ctrl.commits += 1
            ordinal = ctrl.commits
        if ordinal == plan.crash_before_commit:
            raise SimulatedCrash(
                f"scripted crash before commit #{ordinal} ({label})"
            )

    def after_commit(self, label: str) -> None:
        # The inner hook first (the blobfile generation swap): a crash
        # scripted here then exercises the post-finalization state,
        # while the reopen sweep covers the pre-finalization one.
        self._inner.after_commit(label)
        ctrl = self.controller
        with ctrl._lock:
            ctrl.committed.append(label)
            plan = ctrl.plan
            if plan.label is not None and plan.label != label:
                return
            ordinal = ctrl.commits
        if ordinal == plan.tear_blob_after_commit:
            self._tear_one_blob()
            raise SimulatedCrash(
                f"scripted crash (torn blob) after commit #{ordinal} "
                f"({label})"
            )
        if ordinal == plan.tear_append_after_commit:
            self._tear_append_tail()
            raise SimulatedCrash(
                f"scripted crash (torn append) after commit "
                f"#{ordinal} ({label})"
            )
        if ordinal == plan.crash_after_commit:
            raise SimulatedCrash(
                f"scripted crash after commit #{ordinal} ({label})"
            )

    def _tear_one_blob(self) -> None:
        """Truncate one indexed partition blob, committed in place."""
        if self.kind == "blobfile":
            self._flip_blobfile_record_tail()
            return
        conn = self._inner.connect_writer()
        try:
            if self.kind == "sqlite-packed":
                conn.execute(
                    "UPDATE packed_partitions "
                    "SET vectors = substr(vectors, 1, "
                    "max(1, length(vectors) - 5)) "
                    "WHERE partition_id = "
                    "(SELECT MIN(partition_id) FROM packed_partitions)"
                )
            else:
                row = conn.execute(
                    "SELECT partition_id, asset_id FROM vectors "
                    "WHERE partition_id >= 0 "
                    "ORDER BY partition_id, asset_id LIMIT 1"
                ).fetchone()
                if row is not None:
                    conn.execute(
                        "UPDATE vectors SET vector = "
                        "substr(vector, 1, max(1, length(vector) - 5)) "
                        "WHERE partition_id=? AND asset_id=?",
                        (row[0], row[1]),
                    )
            conn.commit()
        finally:
            self._inner.close_connection(conn)

    def _flip_blobfile_record_tail(self) -> None:
        """Corrupt the lowest partition's live blob record in place."""
        conn = self._inner.connect_writer()
        try:
            row = conn.execute(
                "SELECT gen, offset, length FROM blob_locator "
                "WHERE kind='vectors' AND partition_id = "
                "(SELECT MIN(partition_id) FROM blob_locator "
                "WHERE kind='vectors')"
            ).fetchone()
        finally:
            self._inner.close_connection(conn)
        if row is None:
            return
        gen, offset, length = (int(v) for v in row)
        path = self._inner.blob_path(gen)
        tail = max(offset, offset + length - 5)
        with open(path, "r+b") as fh:
            fh.seek(tail)
            chunk = fh.read(offset + length - tail)
            fh.seek(tail)
            fh.write(bytes(b ^ 0xFF for b in chunk))
        self._inner.drop_mappings()

    def _tear_append_tail(self) -> None:
        """Truncate the tail of the last referenced blob record.

        Only meaningful for the ``blobfile`` backend: the file loses
        the last bytes of its most recently appended *referenced*
        record (plus any trailing garbage), modelling a flushed append
        the media tore. The next read of that record must detect it
        and quarantine, never serve partial bytes.
        """
        if self.kind != "blobfile":
            return
        conn = self._inner.connect_writer()
        try:
            row = conn.execute(
                "SELECT gen, offset, length FROM blob_locator "
                "ORDER BY offset DESC LIMIT 1"
            ).fetchone()
        finally:
            self._inner.close_connection(conn)
        if row is None:
            return
        gen, offset, length = (int(v) for v in row)
        path = self._inner.blob_path(gen)
        with open(path, "r+b") as fh:
            fh.truncate(max(offset, offset + length - 5))
        self._inner.drop_mappings()

    # ------------------------------------------------------------------
    # Pure delegation
    # ------------------------------------------------------------------

    def __getattr__(self, name: str):
        # Backend-specific extensions (the blobfile backend's
        # ``compact``/``dead_bytes``/``blob_stats``/…) delegate
        # transparently; ``hasattr`` stays truthful for backends that
        # lack them. Dunder/private lookups must fail normally.
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self._inner, name)

    def connect_writer(self) -> sqlite3.Connection:
        return self._inner.connect_writer()

    def connect_reader(self) -> sqlite3.Connection:
        return self._inner.connect_reader()

    def close_connection(self, conn: sqlite3.Connection) -> None:
        self._inner.close_connection(conn)

    def shutdown(self) -> None:
        self._inner.shutdown()

    def create_layout_tables(self, conn, use_quantization):
        self._inner.create_layout_tables(conn, use_quantization)

    def validate_stored_kind(self, conn) -> None:
        self._inner.validate_stored_kind(conn)

    def remove_assets(self, conn, asset_ids, drop_codes):
        return self._inner.remove_assets(conn, asset_ids, drop_codes)

    def insert_delta_rows(self, conn, rows):
        self._inner.insert_delta_rows(conn, rows)

    def apply_assignments(
        self, conn, moves, code_rows, use_quantization
    ):
        self._inner.apply_assignments(
            conn, moves, code_rows, use_quantization
        )

    def rewrite_codes(self, conn, encode_blobs, batch_size):
        return self._inner.rewrite_codes(conn, encode_blobs, batch_size)

    def drop_partition(self, conn, partition_id, use_quantization):
        return self._inner.drop_partition(
            conn, partition_id, use_quantization
        )

    def partitions_of(self, conn, asset_ids):
        return self._inner.partitions_of(conn, asset_ids)

    def stored_checksums(self, conn, partition_id):
        return self._inner.stored_checksums(conn, partition_id)

    def checksummed_partitions(self, conn):
        return self._inner.checksummed_partitions(conn)

    def refresh_checksums(
        self, conn, partition_ids, use_quantization, kinds=None
    ):
        if kinds is None:
            self._inner.refresh_checksums(
                conn, partition_ids, use_quantization
            )
        else:
            self._inner.refresh_checksums(
                conn, partition_ids, use_quantization, kinds
            )

    def read_partition(self, conn, partition_id):
        return self._inner.read_partition(conn, partition_id)

    def read_partition_codes(self, conn, partition_id):
        return self._inner.read_partition_codes(conn, partition_id)

    def fetch_vector_blobs(self, conn, asset_ids, chunk_size):
        return self._inner.fetch_vector_blobs(
            conn, asset_ids, chunk_size
        )

    def get_vector_blob(self, conn, asset_id):
        return self._inner.get_vector_blob(conn, asset_id)

    def get_partition_of(self, conn, asset_id):
        return self._inner.get_partition_of(conn, asset_id)

    def iter_row_batches(self, conn, include_delta, batch_size):
        return self._inner.iter_row_batches(
            conn, include_delta, batch_size
        )

    def all_asset_ids(self, conn):
        return self._inner.all_asset_ids(conn)

    def count_vectors(self, conn, include_delta):
        return self._inner.count_vectors(conn, include_delta)

    def delta_size(self, conn):
        return self._inner.delta_size(conn)

    def partition_sizes(self, conn, include_delta):
        return self._inner.partition_sizes(conn, include_delta)

    def count_codes(self, conn):
        return self._inner.count_codes(conn)

    def integrity_problems(
        self, conn, use_quantization, quantizer_trained
    ):
        return self._inner.integrity_problems(
            conn, use_quantization, quantizer_trained
        )
