"""Packed-blob SQLite layout: one contiguous blob per partition.

The row-per-vector layout pays ~40 bytes of b-tree key + record
overhead per row. At float32 payloads (hundreds of bytes) that is
noise; at 8–16 byte PQ codes it dominates, capping the end-to-end
bytes-read reduction far below the payload compression ratio. This
backend stores each partition as ONE row — a length-prefixed asset-id
blob, an int64 vector-id array and the packed vector/code payload —
so a partition scan reads one contiguous blob and the per-row
overhead collapses to a per-partition constant.

Layout contracts that keep results bit-identical to the row backend:

- Rows inside every blob are sorted by ``(asset_id, vector_id)`` —
  the exact order ``ORDER BY asset_id, vector_id`` yields.
- ``packed_codes`` blobs order rows by asset id over the *coded*
  subset, matching the row layout's codes range scan.
- Point reads slice a single row out of the blob with ``substr`` via
  the ``vector_locator`` row index, charging only that row's bytes —
  the same cost the row layout pays for an index point read.

Trade-offs (documented, not hidden): upserting or deleting an asset
rewrites its whole partition blob, and mass reassignment loads every
touched partition's rows into memory for the rewrite. Packed is a
read-optimized layout for scan-heavy, update-light workloads.
"""

from __future__ import annotations

import sqlite3
import struct
from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

from repro.core.config import DELTA_PARTITION_ID
from repro.core.errors import StorageError
from repro.storage import schema as schema_mod
from repro.storage.backends.base import (
    PACKED_PARTITION_OVERHEAD_BYTES,
    SQLITE_ROW_OVERHEAD_BYTES,
    PartitionPayload,
    SQLiteFileConnectionsMixin,
    StorageBackend,
)
from repro.storage.cache import ROW_ID_OVERHEAD_BYTES

_VID_DTYPE = np.dtype("<i8")


def pack_asset_ids(asset_ids: Iterable[str]) -> bytes:
    """uint16-length-prefixed UTF-8 concatenation of the ids."""
    parts: list[bytes] = []
    for asset_id in asset_ids:
        raw = asset_id.encode("utf-8")
        if len(raw) > 0xFFFF:
            raise StorageError(
                f"asset id longer than 65535 bytes: {asset_id[:40]!r}…"
            )
        parts.append(struct.pack("<H", len(raw)))
        parts.append(raw)
    return b"".join(parts)


def unpack_asset_ids(blob: bytes, count: int) -> tuple[str, ...]:
    out: list[str] = []
    view = memoryview(blob)
    offset = 0
    for _ in range(count):
        if offset + 2 > len(view):
            raise StorageError(
                "packed asset-id blob truncated "
                f"({len(blob)} bytes for {count} rows)"
            )
        (length,) = struct.unpack_from("<H", view, offset)
        offset += 2
        if offset + length > len(view):
            raise StorageError(
                "packed asset-id blob truncated "
                f"({len(blob)} bytes for {count} rows)"
            )
        out.append(bytes(view[offset : offset + length]).decode("utf-8"))
        offset += length
    if offset != len(view):
        raise StorageError(
            f"packed asset-id blob has {len(blob) - offset} trailing "
            "bytes"
        )
    return tuple(out)


class SQLitePackedBackend(SQLiteFileConnectionsMixin, StorageBackend):
    """One blob per partition; row-per-vector delta; id locator."""

    kind = "sqlite-packed"
    shared_connection = False
    file_backed = True

    def __init__(self, path: str, config) -> None:
        super().__init__(path, config)
        self._row_bytes = config.dim * 4
        self._code_bytes = (
            config.scan_code_width if config.uses_quantization else 0
        )

    def create_layout_tables(
        self, conn: sqlite3.Connection, use_quantization: bool
    ) -> None:
        conn.execute(schema_mod.PACKED_PARTITIONS_TABLE)
        conn.execute(schema_mod.PACKED_DELTA_TABLE)
        conn.execute(schema_mod.PACKED_LOCATOR_TABLE)
        if use_quantization:
            conn.execute(schema_mod.PACKED_CODES_TABLE)

    # ------------------------------------------------------------------
    # Blob plumbing
    # ------------------------------------------------------------------

    def _locate(
        self, conn: sqlite3.Connection, asset_ids: Sequence[str]
    ) -> dict[str, tuple[int, int, int]]:
        """asset -> (partition_id, vector_id, row_index), found only."""
        out: dict[str, tuple[int, int, int]] = {}
        ids = list(asset_ids)
        for start in range(0, len(ids), 500):
            chunk = ids[start : start + 500]
            placeholders = ", ".join("?" for _ in chunk)
            rows = conn.execute(
                "SELECT asset_id, partition_id, vector_id, row_index "
                f"FROM vector_locator WHERE asset_id IN ({placeholders})",
                chunk,
            ).fetchall()
            for asset_id, pid, vid, ridx in rows:
                out[asset_id] = (int(pid), int(vid), int(ridx))
        return out

    def _load_rows(
        self, conn: sqlite3.Connection, partition_id: int
    ) -> dict[str, tuple[int, bytes]]:
        """One packed partition as {asset_id: (vector_id, vector)}."""
        row = conn.execute(
            "SELECT row_count, asset_ids, vector_ids, vectors "
            "FROM packed_partitions WHERE partition_id=?",
            (partition_id,),
        ).fetchone()
        if row is None:
            return {}
        count = int(row[0])
        asset_ids = unpack_asset_ids(row[1], count)
        vector_ids = np.frombuffer(row[2], dtype=_VID_DTYPE)
        payload = memoryview(row[3])
        width = self._row_bytes
        self._check_payload(partition_id, count, len(row[3]), width)
        return {
            asset_ids[i]: (
                int(vector_ids[i]),
                bytes(payload[i * width : (i + 1) * width]),
            )
            for i in range(count)
        }

    def _check_payload(
        self, partition_id: int, count: int, nbytes: int, width: int
    ) -> None:
        if nbytes != count * width:
            raise StorageError(
                f"packed partition {partition_id}: payload holds "
                f"{nbytes} bytes, expected {count} rows of "
                f"{width} bytes"
            )

    def _write_rows(
        self,
        conn: sqlite3.Connection,
        partition_id: int,
        rows: dict[str, tuple[int, bytes]],
    ) -> None:
        """Rewrite one partition blob (sorted) and its locator rows."""
        if not rows:
            conn.execute(
                "DELETE FROM packed_partitions WHERE partition_id=?",
                (partition_id,),
            )
            return
        ordered = sorted(rows.items())
        conn.execute(
            "INSERT OR REPLACE INTO packed_partitions "
            "(partition_id, row_count, asset_ids, vector_ids, vectors) "
            "VALUES (?, ?, ?, ?, ?)",
            (
                partition_id,
                len(ordered),
                pack_asset_ids(aid for aid, _ in ordered),
                np.array(
                    [vid for _, (vid, _) in ordered], dtype=_VID_DTYPE
                ).tobytes(),
                b"".join(blob for _, (_, blob) in ordered),
            ),
        )
        conn.executemany(
            "INSERT OR REPLACE INTO vector_locator "
            "(asset_id, partition_id, vector_id, row_index) "
            "VALUES (?, ?, ?, ?)",
            [
                (aid, partition_id, vid, index)
                for index, (aid, (vid, _)) in enumerate(ordered)
            ],
        )

    def _load_codes(
        self, conn: sqlite3.Connection, partition_id: int
    ) -> dict[str, bytes]:
        row = conn.execute(
            "SELECT row_count, asset_ids, codes FROM packed_codes "
            "WHERE partition_id=?",
            (partition_id,),
        ).fetchone()
        if row is None:
            return {}
        count = int(row[0])
        asset_ids = unpack_asset_ids(row[1], count)
        payload = memoryview(row[2])
        width = self._code_bytes
        self._check_payload(partition_id, count, len(row[2]), width)
        return {
            asset_ids[i]: bytes(payload[i * width : (i + 1) * width])
            for i in range(count)
        }

    def _write_codes(
        self,
        conn: sqlite3.Connection,
        partition_id: int,
        codes: dict[str, bytes],
    ) -> None:
        if not codes:
            conn.execute(
                "DELETE FROM packed_codes WHERE partition_id=?",
                (partition_id,),
            )
            return
        ordered = sorted(codes.items())
        conn.execute(
            "INSERT OR REPLACE INTO packed_codes "
            "(partition_id, row_count, asset_ids, codes) "
            "VALUES (?, ?, ?, ?)",
            (
                partition_id,
                len(ordered),
                pack_asset_ids(aid for aid, _ in ordered),
                b"".join(blob for _, blob in ordered),
            ),
        )

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def remove_assets(
        self,
        conn: sqlite3.Connection,
        asset_ids: Sequence[str],
        drop_codes: bool,
    ) -> int:
        located = self._locate(conn, list(dict.fromkeys(asset_ids)))
        if not located:
            return 0
        delta_gone = [
            aid for aid, (pid, _, _) in located.items()
            if pid == DELTA_PARTITION_ID
        ]
        if delta_gone:
            conn.executemany(
                "DELETE FROM delta_vectors WHERE asset_id=?",
                [(aid,) for aid in delta_gone],
            )
        by_partition: dict[int, set[str]] = {}
        for aid, (pid, _, _) in located.items():
            if pid != DELTA_PARTITION_ID:
                by_partition.setdefault(pid, set()).add(aid)
        for pid, gone in by_partition.items():
            rows = self._load_rows(conn, pid)
            for aid in gone:
                rows.pop(aid, None)
            self._write_rows(conn, pid, rows)
            if drop_codes:
                codes = self._load_codes(conn, pid)
                if any(aid in codes for aid in gone):
                    for aid in gone:
                        codes.pop(aid, None)
                    self._write_codes(conn, pid, codes)
        conn.executemany(
            "DELETE FROM vector_locator WHERE asset_id=?",
            [(aid,) for aid in located],
        )
        return len(located)

    def insert_delta_rows(
        self,
        conn: sqlite3.Connection,
        rows: Sequence[tuple[str, int, bytes]],
    ) -> None:
        conn.executemany(
            "INSERT INTO delta_vectors (asset_id, vector_id, vector) "
            "VALUES (?, ?, ?)",
            list(rows),
        )
        conn.executemany(
            "INSERT OR REPLACE INTO vector_locator "
            "(asset_id, partition_id, vector_id, row_index) "
            "VALUES (?, ?, ?, -1)",
            [
                (asset_id, DELTA_PARTITION_ID, vector_id)
                for asset_id, vector_id, _ in rows
            ],
        )

    def apply_assignments(
        self,
        conn: sqlite3.Connection,
        moves: Sequence[tuple[str, int]],
        code_rows: Sequence[tuple[int, str, int, bytes]] | None,
        use_quantization: bool,
    ) -> None:
        dest: dict[str, int] = {}
        for asset_id, pid in moves:
            dest[asset_id] = int(pid)
        located = self._locate(conn, list(dest))
        effective = {
            aid: pid
            for aid, pid in dest.items()
            if aid in located and located[aid][0] != pid
        }
        touched: set[int] = set()
        for aid, pid in effective.items():
            if located[aid][0] != DELTA_PARTITION_ID:
                touched.add(located[aid][0])
            if pid != DELTA_PARTITION_ID:
                touched.add(pid)
        part_rows = {
            pid: self._load_rows(conn, pid) for pid in touched
        }
        part_codes: dict[int, dict[str, bytes]] = {}
        if use_quantization:
            part_codes = {
                pid: self._load_codes(conn, pid) for pid in touched
            }
        delta_removed: list[str] = []
        delta_added: list[tuple[str, int, bytes]] = []
        for aid, new_pid in effective.items():
            cur_pid, vid, _ = located[aid]
            if cur_pid == DELTA_PARTITION_ID:
                row = conn.execute(
                    "SELECT vector_id, vector FROM delta_vectors "
                    "WHERE asset_id=?",
                    (aid,),
                ).fetchone()
                vid, blob = int(row[0]), row[1]
                delta_removed.append(aid)
                code = None
            else:
                vid, blob = part_rows[cur_pid].pop(aid)
                code = (
                    part_codes[cur_pid].pop(aid, None)
                    if use_quantization
                    else None
                )
            if new_pid == DELTA_PARTITION_ID:
                delta_added.append((aid, vid, blob))
            else:
                part_rows[new_pid][aid] = (vid, blob)
                if code is not None:
                    part_codes[new_pid][aid] = code
        if code_rows:
            for pid, aid, _vid, blob in code_rows:
                pid = int(pid)
                if pid not in part_codes:
                    part_codes[pid] = self._load_codes(conn, pid)
                part_codes[pid][aid] = blob
        if delta_removed:
            conn.executemany(
                "DELETE FROM delta_vectors WHERE asset_id=?",
                [(aid,) for aid in delta_removed],
            )
        if delta_added:
            conn.executemany(
                "INSERT OR REPLACE INTO delta_vectors "
                "(asset_id, vector_id, vector) VALUES (?, ?, ?)",
                delta_added,
            )
            conn.executemany(
                "INSERT OR REPLACE INTO vector_locator "
                "(asset_id, partition_id, vector_id, row_index) "
                "VALUES (?, ?, ?, -1)",
                [
                    (aid, DELTA_PARTITION_ID, vid)
                    for aid, vid, _ in delta_added
                ],
            )
        for pid, rows in part_rows.items():
            self._write_rows(conn, pid, rows)
        for pid, codes in part_codes.items():
            self._write_codes(conn, pid, codes)

    def rewrite_codes(
        self,
        conn: sqlite3.Connection,
        encode_blobs: Callable[[list[bytes]], list[bytes]],
        batch_size: int,
    ) -> int:
        conn.execute("DELETE FROM packed_codes")
        written = 0
        width = self._row_bytes
        pids = [
            int(r[0])
            for r in conn.execute(
                "SELECT partition_id FROM packed_partitions "
                "ORDER BY partition_id"
            ).fetchall()
        ]
        for pid in pids:
            row = conn.execute(
                "SELECT row_count, asset_ids, vectors "
                "FROM packed_partitions WHERE partition_id=?",
                (pid,),
            ).fetchone()
            count = int(row[0])
            self._check_payload(pid, count, len(row[2]), width)
            payload = memoryview(row[2])
            blobs = [
                bytes(payload[i * width : (i + 1) * width])
                for i in range(count)
            ]
            code_parts: list[bytes] = []
            for start in range(0, count, batch_size):
                code_parts.extend(
                    encode_blobs(blobs[start : start + batch_size])
                )
            conn.execute(
                "INSERT INTO packed_codes "
                "(partition_id, row_count, asset_ids, codes) "
                "VALUES (?, ?, ?, ?)",
                (pid, count, row[1], b"".join(code_parts)),
            )
            written += count
        return written

    def drop_partition(
        self,
        conn: sqlite3.Connection,
        partition_id: int,
        use_quantization: bool,
    ) -> int:
        row = conn.execute(
            "SELECT row_count FROM packed_partitions "
            "WHERE partition_id=?",
            (partition_id,),
        ).fetchone()
        dropped = 0 if row is None else int(row[0])
        conn.execute(
            "DELETE FROM packed_partitions WHERE partition_id=?",
            (partition_id,),
        )
        conn.execute(
            "DELETE FROM vector_locator WHERE partition_id=?",
            (partition_id,),
        )
        if use_quantization:
            conn.execute(
                "DELETE FROM packed_codes WHERE partition_id=?",
                (partition_id,),
            )
        return dropped

    def partitions_of(
        self, conn: sqlite3.Connection, asset_ids: Sequence[str]
    ) -> set[int]:
        located = self._locate(conn, list(dict.fromkeys(asset_ids)))
        return {pid for pid, _, _ in located.values()}

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def read_partition(
        self, conn: sqlite3.Connection, partition_id: int
    ) -> PartitionPayload:
        if partition_id == DELTA_PARTITION_ID:
            rows = conn.execute(
                "SELECT asset_id, vector_id, vector FROM delta_vectors "
                "ORDER BY asset_id, vector_id"
            ).fetchall()
            blobs = [r[2] for r in rows]
            stored = sum(len(b) for b in blobs) + (
                ROW_ID_OVERHEAD_BYTES + SQLITE_ROW_OVERHEAD_BYTES
            ) * len(rows)
            return PartitionPayload(
                asset_ids=tuple(r[0] for r in rows),
                vector_ids=tuple(int(r[1]) for r in rows),
                blobs=blobs,
                packed=None,
                stored_bytes=stored,
            )
        row = conn.execute(
            "SELECT row_count, asset_ids, vector_ids, vectors "
            "FROM packed_partitions WHERE partition_id=?",
            (partition_id,),
        ).fetchone()
        if row is None:
            return PartitionPayload((), (), [], None, 0)
        count = int(row[0])
        asset_ids = unpack_asset_ids(row[1], count)
        vector_ids = tuple(
            int(v) for v in np.frombuffer(row[2], dtype=_VID_DTYPE)
        )
        stored = (
            len(row[1])
            + len(row[2])
            + len(row[3])
            + PACKED_PARTITION_OVERHEAD_BYTES
        )
        return PartitionPayload(
            asset_ids=asset_ids,
            vector_ids=vector_ids,
            blobs=None,
            packed=row[3],
            stored_bytes=stored,
        )

    def read_partition_codes(
        self, conn: sqlite3.Connection, partition_id: int
    ) -> PartitionPayload:
        if partition_id == DELTA_PARTITION_ID:
            return PartitionPayload((), (), [], None, 0)
        row = conn.execute(
            "SELECT row_count, asset_ids, codes FROM packed_codes "
            "WHERE partition_id=?",
            (partition_id,),
        ).fetchone()
        if row is None:
            return PartitionPayload((), (), [], None, 0)
        count = int(row[0])
        asset_ids = unpack_asset_ids(row[1], count)
        stored = (
            len(row[1]) + len(row[2]) + PACKED_PARTITION_OVERHEAD_BYTES
        )
        return PartitionPayload(
            asset_ids=asset_ids,
            # Vector ids are not materialized in the codes blob; scan
            # consumers identify rows by asset id.
            vector_ids=(0,) * count,
            blobs=None,
            packed=row[2],
            stored_bytes=stored,
        )

    def _slice_vector(
        self, conn: sqlite3.Connection, pid: int, row_index: int
    ) -> bytes | None:
        """Read ONE row out of a packed blob (substr = ranged read)."""
        width = self._row_bytes
        row = conn.execute(
            "SELECT substr(vectors, ?, ?) FROM packed_partitions "
            "WHERE partition_id=?",
            (row_index * width + 1, width, pid),
        ).fetchone()
        return None if row is None else row[0]

    def fetch_vector_blobs(
        self,
        conn: sqlite3.Connection,
        asset_ids: Sequence[str],
        chunk_size: int,
    ) -> tuple[list[str], list[bytes], int]:
        found: list[str] = []
        blobs: list[bytes] = []
        for start in range(0, len(asset_ids), chunk_size):
            chunk = list(asset_ids[start : start + chunk_size])
            located = self._locate(conn, chunk)
            for aid in sorted(located):
                pid, _vid, ridx = located[aid]
                if pid == DELTA_PARTITION_ID:
                    row = conn.execute(
                        "SELECT vector FROM delta_vectors "
                        "WHERE asset_id=?",
                        (aid,),
                    ).fetchone()
                    blob = None if row is None else row[0]
                else:
                    blob = self._slice_vector(conn, pid, ridx)
                if blob is not None:
                    found.append(aid)
                    blobs.append(bytes(blob))
        stored = sum(
            len(b) for b in blobs
        ) + SQLITE_ROW_OVERHEAD_BYTES * len(found)
        return found, blobs, stored

    def get_vector_blob(
        self, conn: sqlite3.Connection, asset_id: str
    ) -> bytes | None:
        located = self._locate(conn, [asset_id])
        if asset_id not in located:
            return None
        pid, _vid, ridx = located[asset_id]
        if pid == DELTA_PARTITION_ID:
            row = conn.execute(
                "SELECT vector FROM delta_vectors WHERE asset_id=?",
                (asset_id,),
            ).fetchone()
            return None if row is None else row[0]
        blob = self._slice_vector(conn, pid, ridx)
        return None if blob is None else bytes(blob)

    def get_partition_of(
        self, conn: sqlite3.Connection, asset_id: str
    ) -> int | None:
        row = conn.execute(
            "SELECT partition_id FROM vector_locator WHERE asset_id=?",
            (asset_id,),
        ).fetchone()
        return None if row is None else int(row[0])

    def iter_row_batches(
        self,
        conn: sqlite3.Connection,
        include_delta: bool,
        batch_size: int,
    ) -> Iterator[tuple[list[str], list[bytes], int]]:
        buf_ids: list[str] = []
        buf_blobs: list[bytes] = []

        def flush(force: bool):
            while len(buf_ids) >= batch_size or (force and buf_ids):
                ids = buf_ids[:batch_size]
                blobs = buf_blobs[:batch_size]
                del buf_ids[:batch_size]
                del buf_blobs[:batch_size]
                stored = sum(
                    len(b) for b in blobs
                ) + SQLITE_ROW_OVERHEAD_BYTES * len(ids)
                yield ids, blobs, stored

        if include_delta:
            cursor = conn.execute(
                "SELECT asset_id, vector FROM delta_vectors "
                "ORDER BY asset_id, vector_id"
            )
            while True:
                rows = cursor.fetchmany(batch_size)
                if not rows:
                    break
                for aid, blob in rows:
                    buf_ids.append(aid)
                    buf_blobs.append(blob)
                yield from flush(force=False)
        width = self._row_bytes
        pids = [
            int(r[0])
            for r in conn.execute(
                "SELECT partition_id FROM packed_partitions "
                "ORDER BY partition_id"
            ).fetchall()
        ]
        for pid in pids:
            row = conn.execute(
                "SELECT row_count, asset_ids, vectors "
                "FROM packed_partitions WHERE partition_id=?",
                (pid,),
            ).fetchone()
            if row is None:
                continue
            count = int(row[0])
            self._check_payload(pid, count, len(row[2]), width)
            asset_ids = unpack_asset_ids(row[1], count)
            payload = memoryview(row[2])
            for i in range(count):
                buf_ids.append(asset_ids[i])
                buf_blobs.append(
                    bytes(payload[i * width : (i + 1) * width])
                )
            yield from flush(force=False)
        yield from flush(force=True)

    def all_asset_ids(self, conn: sqlite3.Connection) -> list[str]:
        rows = conn.execute(
            "SELECT asset_id FROM vector_locator ORDER BY asset_id"
        ).fetchall()
        return [r[0] for r in rows]

    def count_vectors(
        self, conn: sqlite3.Connection, include_delta: bool
    ) -> int:
        if include_delta:
            cur = conn.execute("SELECT COUNT(*) FROM vector_locator")
        else:
            cur = conn.execute(
                "SELECT COUNT(*) FROM vector_locator "
                "WHERE partition_id != ?",
                (DELTA_PARTITION_ID,),
            )
        return int(cur.fetchone()[0])

    def delta_size(self, conn: sqlite3.Connection) -> int:
        cur = conn.execute("SELECT COUNT(*) FROM delta_vectors")
        return int(cur.fetchone()[0])

    def partition_sizes(
        self, conn: sqlite3.Connection, include_delta: bool
    ) -> dict[int, int]:
        rows = conn.execute(
            "SELECT partition_id, row_count FROM packed_partitions"
        ).fetchall()
        sizes = {int(pid): int(count) for pid, count in rows}
        if include_delta:
            delta = self.delta_size(conn)
            if delta:
                sizes[DELTA_PARTITION_ID] = delta
        return sizes

    def count_codes(self, conn: sqlite3.Connection) -> int:
        cur = conn.execute(
            "SELECT COALESCE(SUM(row_count), 0) FROM packed_codes"
        )
        return int(cur.fetchone()[0])

    # ------------------------------------------------------------------
    # Integrity
    # ------------------------------------------------------------------

    def integrity_problems(
        self,
        conn: sqlite3.Connection,
        use_quantization: bool,
        quantizer_trained: bool,
    ) -> list[str]:
        problems: list[str] = []
        for (line,) in conn.execute("PRAGMA integrity_check"):
            if line != "ok":
                problems.append(f"sqlite: {line}")
        orphans = conn.execute(
            "SELECT COALESCE(SUM(p.row_count), 0) "
            "FROM packed_partitions p "
            "WHERE NOT EXISTS (SELECT 1 FROM centroids c "
            "WHERE c.partition_id = p.partition_id)"
        ).fetchone()[0]
        if orphans:
            problems.append(
                f"{orphans} vectors assigned to partitions "
                "with no centroid"
            )
        drift = conn.execute(
            "SELECT c.partition_id, c.vector_count, "
            "COALESCE(p.row_count, 0) FROM centroids c "
            "LEFT JOIN packed_partitions p "
            "ON p.partition_id = c.partition_id "
            "WHERE COALESCE(p.row_count, 0) > c.vector_count"
        ).fetchall()
        for pid, recorded, actual in drift:
            problems.append(
                f"partition {pid}: centroid records {recorded} "
                f"vectors, table holds {actual}"
            )
        # The locator must account for every row — packed and delta.
        locator_rows = conn.execute(
            "SELECT COUNT(*) FROM vector_locator"
        ).fetchone()[0]
        packed_rows = conn.execute(
            "SELECT COALESCE(SUM(row_count), 0) FROM packed_partitions"
        ).fetchone()[0]
        delta_rows = self.delta_size(conn)
        if int(locator_rows) != int(packed_rows) + delta_rows:
            problems.append(
                f"vector_locator holds {locator_rows} rows but "
                f"partitions hold {int(packed_rows) + delta_rows}"
            )
        # Blob sizes must agree with the recorded row counts.
        width = self._row_bytes
        for pid, count, nbytes in conn.execute(
            "SELECT partition_id, row_count, length(vectors) "
            "FROM packed_partitions"
        ).fetchall():
            if int(nbytes) != int(count) * width:
                problems.append(
                    f"packed partition {pid}: payload holds "
                    f"{nbytes} bytes, expected {count} rows of "
                    f"{width} bytes"
                )
        if use_quantization and quantizer_trained:
            uncoded = conn.execute(
                "SELECT COALESCE(SUM(p.row_count - "
                "COALESCE(c.row_count, 0)), 0) "
                "FROM packed_partitions p LEFT JOIN packed_codes c "
                "ON c.partition_id = p.partition_id "
                "WHERE p.row_count > COALESCE(c.row_count, 0)"
            ).fetchone()[0]
            if uncoded:
                problems.append(
                    f"{uncoded} indexed vectors have no "
                    "quantized code (invisible to quantized "
                    "scans; rebuild the index to re-encode)"
                )
        if use_quantization:
            stale = conn.execute(
                "SELECT COALESCE(SUM(c.row_count), 0) "
                "FROM packed_codes c "
                "WHERE NOT EXISTS (SELECT 1 FROM packed_partitions p "
                "WHERE p.partition_id = c.partition_id)"
            ).fetchone()[0]
            if stale:
                problems.append(
                    f"{stale} quantized code rows do not match any "
                    "vector row"
                )
        return problems
