"""Storage-backend registry: physical layouts behind the engine.

``create_backend`` instantiates the backend named by
``MicroNNConfig.storage_backend``; ``detect_backend`` sniffs which
backend laid out an existing database (the CLI uses it so reopening a
database never needs the backend re-specified).
"""

from __future__ import annotations

import os
import sqlite3

from repro.core.errors import StorageError
from repro.storage.backends.base import (
    BACKEND_META_KEY,
    PACKED_PARTITION_OVERHEAD_BYTES,
    SQLITE_ROW_OVERHEAD_BYTES,
    PartitionPayload,
    StorageBackend,
    file_looks_like_memory_marker,
    file_looks_like_sqlite,
)
from repro.storage.backends.blobfile import BlobFileBackend
from repro.storage.backends.memory import MemoryBackend
from repro.storage.backends.sqlite_packed import SQLitePackedBackend
from repro.storage.backends.sqlite_row import SQLiteRowBackend

__all__ = [
    "BACKEND_META_KEY",
    "PACKED_PARTITION_OVERHEAD_BYTES",
    "SQLITE_ROW_OVERHEAD_BYTES",
    "BlobFileBackend",
    "MemoryBackend",
    "PartitionPayload",
    "SQLitePackedBackend",
    "SQLiteRowBackend",
    "StorageBackend",
    "create_backend",
    "detect_backend",
]

_BACKENDS: dict[str, type[StorageBackend]] = {
    cls.kind: cls
    for cls in (
        SQLiteRowBackend,
        SQLitePackedBackend,
        BlobFileBackend,
        MemoryBackend,
    )
}


def create_backend(kind: str, path: str, config) -> StorageBackend:
    """Instantiate the backend registered under ``kind``.

    ``fault:<inner>`` wraps the inner backend with the fault-injecting
    test decorator (``repro.storage.backends.fault``), imported lazily
    so production opens never load the fault machinery.
    """
    if kind.startswith("fault:"):
        from repro.storage.backends.fault import FaultInjectingBackend

        inner = create_backend(kind[len("fault:"):], path, config)
        return FaultInjectingBackend(path, config, inner)
    try:
        cls = _BACKENDS[kind]
    except KeyError:
        raise StorageError(
            f"unknown storage backend {kind!r}; "
            f"supported: {sorted(_BACKENDS)} "
            "(optionally prefixed with 'fault:')"
        ) from None
    return cls(path, config)


def detect_backend(path: str | os.PathLike[str]) -> str | None:
    """Which backend laid out the database at ``path`` (None if absent).

    A SQLite file reports the backend recorded in its meta table; a
    file predating the backend abstraction (no ``storage_backend``
    meta row) is by definition ``sqlite-row``. A memory-backend
    placeholder reports ``memory``.
    """
    path = os.fspath(path)
    if not os.path.exists(path):
        return None
    if file_looks_like_memory_marker(path):
        return "memory"
    if not file_looks_like_sqlite(path):
        return None
    uri = f"file:{path}?mode=ro"
    try:
        conn = sqlite3.connect(uri, uri=True)
    except sqlite3.Error:
        return None
    try:
        has_meta = conn.execute(
            "SELECT 1 FROM sqlite_master "
            "WHERE type='table' AND name='meta'"
        ).fetchone()
        if has_meta is None:
            return "sqlite-row"
        row = conn.execute(
            "SELECT value FROM meta WHERE key=?", (BACKEND_META_KEY,)
        ).fetchone()
        return "sqlite-row" if row is None else str(row[0])
    except sqlite3.Error:
        return None
    finally:
        conn.close()
