"""Pure in-memory backend: the row layout on one shared connection.

For tests and benchmarks that want engine semantics without disk I/O.
The data lives in a single ``:memory:`` SQLite connection shared by
the writer and every reader; the engine serializes reads behind the
writer lock instead of relying on WAL snapshots (an in-memory
database has no WAL).

Reopen-by-path works within one process: a process-global registry
maps the database path to its live connection, and a small marker
file is left at the path so path-existence checks (e.g. the shard
manifest's) keep working. The marker makes failure modes explicit —
opening it with a SQLite backend, or from a fresh process, raises a
clear error instead of silently presenting an empty database.
"""

from __future__ import annotations

import os
import sqlite3
import threading

from repro.core.errors import StorageError
from repro.storage.backends.base import (
    MEMORY_MARKER,
    file_looks_like_memory_marker,
    file_looks_like_sqlite,
)
from repro.storage.backends.sqlite_row import RowLayoutSQL

#: path -> live shared connection, for reopen within the process.
_REGISTRY: dict[str, sqlite3.Connection] = {}
_REGISTRY_LOCK = threading.Lock()


def reset_registry() -> None:
    """Drop every registered in-memory database (test isolation)."""
    with _REGISTRY_LOCK:
        for conn in _REGISTRY.values():
            try:
                conn.close()
            except sqlite3.Error:
                pass
        _REGISTRY.clear()


class MemoryBackend(RowLayoutSQL):
    """Row layout on a shared ``:memory:`` connection."""

    kind = "memory"
    shared_connection = True
    file_backed = False

    def __init__(self, path: str, config) -> None:
        super().__init__(path, config)
        self._conn: sqlite3.Connection | None = None

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------

    def connect_writer(self) -> sqlite3.Connection:
        key = os.path.abspath(self._path)
        with _REGISTRY_LOCK:
            conn = _REGISTRY.get(key)
            if conn is None:
                self._validate_fresh_path()
                conn = sqlite3.connect(
                    ":memory:", check_same_thread=False
                )
                conn.execute("PRAGMA foreign_keys=ON")
                with open(self._path, "wb") as fh:
                    fh.write(MEMORY_MARKER)
                _REGISTRY[key] = conn
        self._conn = conn
        return conn

    def _validate_fresh_path(self) -> None:
        if not os.path.exists(self._path):
            return
        if file_looks_like_sqlite(self._path):
            raise StorageError(
                f"{self._path!r} is a SQLite database file; open it "
                "with storage_backend='sqlite-row' or "
                "'sqlite-packed', not the memory backend."
            )
        if file_looks_like_memory_marker(self._path):
            raise StorageError(
                f"{self._path!r} is a memory-backend placeholder from "
                "another process: in-memory databases do not survive "
                "process restart. Delete the file to start fresh."
            )
        raise StorageError(
            f"{self._path!r} exists and is not a MicroNN database"
        )

    def connect_reader(self) -> sqlite3.Connection:
        if self._conn is None:
            return self.connect_writer()
        return self._conn

    def close_connection(self, conn: sqlite3.Connection) -> None:
        # The connection IS the database; it stays alive in the
        # registry so the path can be reopened within this process.
        pass

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------

    def iter_row_batches(self, conn, include_delta, batch_size):
        # A shared connection has no snapshot isolation: the index
        # builder commits partition moves on this same connection
        # while iterating, which would perturb a live cursor over the
        # very rows it is reading. Materialize the row stream first;
        # the collection already lives in memory, so this does not
        # change the process's asymptotic footprint.
        batches = list(
            super().iter_row_batches(conn, include_delta, batch_size)
        )
        yield from batches
