"""Relational schema for a MicroNN database (paper Fig. 2).

Three user-visible tables mirror the paper exactly:

- ``centroids`` — one row per IVF partition: the centroid blob and the
  vector count used for incremental centroid updates.
- ``vectors`` — the vector rows, stored ``WITHOUT ROWID`` with primary
  key ``(partition_id, asset_id, vector_id)`` so SQLite clusters the
  rows on disk by partition id; scanning a partition is then a
  sequential range read (paper §3.2: "A clustered index ensures that
  the rows of the vector table are clustered on disk").
- ``attributes`` — one row per asset with the client-declared columns,
  each backed by a b-tree index for filter evaluation (paper §3.5).

Support tables:

- ``vector_codes`` — SQ8-quantized scan codes (1 byte/dimension),
  clustered like ``vectors`` and present only when the database was
  opened with ``quantization="sq8"``; the fast scan path reads these
  instead of the float32 blobs and reranks against ``vectors``.
- ``tokens`` — our inverted token index over FTS-enabled attributes;
  it powers ``MATCH`` filters and provides the document-frequency
  statistics the hybrid-query optimizer needs for string selectivity
  estimation (§3.5.1 / §4.3.1).
- ``attributes_fts`` — optional FTS5 mirror, created when the SQLite
  build supports it; used as an alternative MATCH execution path.
- ``column_stats`` — serialized per-column histograms/MCVs collected
  by ``ANALYZE``-style statistics runs.
- ``meta`` — key/value store for dimensionality, metric, id counters
  and index-monitor baselines.
"""

from __future__ import annotations

import sqlite3

#: Bump when the on-disk layout changes incompatibly.
SCHEMA_VERSION = 1

META_TABLE = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
) WITHOUT ROWID
"""

CENTROIDS_TABLE = """
CREATE TABLE IF NOT EXISTS centroids (
    partition_id  INTEGER PRIMARY KEY,
    centroid      BLOB    NOT NULL,
    vector_count  INTEGER NOT NULL DEFAULT 0
)
"""

VECTORS_TABLE = """
CREATE TABLE IF NOT EXISTS vectors (
    partition_id INTEGER NOT NULL,
    asset_id     TEXT    NOT NULL,
    vector_id    INTEGER NOT NULL,
    vector       BLOB    NOT NULL,
    PRIMARY KEY (partition_id, asset_id, vector_id)
) WITHOUT ROWID
"""

#: Upserts and deletes address rows by asset id, so keep a unique
#: secondary index; an asset has exactly one vector at a time.
VECTORS_ASSET_INDEX = """
CREATE UNIQUE INDEX IF NOT EXISTS idx_vectors_asset_id
    ON vectors (asset_id)
"""

#: Quantized SQ8 codes, clustered on disk exactly like ``vectors`` so a
#: quantized partition scan is the same sequential range read at a
#: quarter of the bytes. Created ONLY when the database is opened with
#: ``quantization="sq8"`` — the default float32 layout stays
#: byte-identical for existing databases.
VECTOR_CODES_TABLE = """
CREATE TABLE IF NOT EXISTS vector_codes (
    partition_id INTEGER NOT NULL,
    asset_id     TEXT    NOT NULL,
    vector_id    INTEGER NOT NULL,
    code         BLOB    NOT NULL,
    PRIMARY KEY (partition_id, asset_id, vector_id)
) WITHOUT ROWID
"""

#: Upserts and deletes drop an asset's stale code row by asset id.
CODES_ASSET_INDEX = """
CREATE UNIQUE INDEX IF NOT EXISTS idx_codes_asset_id
    ON vector_codes (asset_id)
"""

#: Packed-blob layout (``storage_backend="sqlite-packed"``): one row
#: per partition holding the whole partition as three contiguous
#: blobs — length-prefixed asset ids, an int64 vector-id array and the
#: packed float32 payload. A partition scan reads ONE row, so the
#: ~40 bytes/row of b-tree key+record overhead disappears; with 8–16
#: byte PQ codes that overhead would otherwise dominate the read.
PACKED_PARTITIONS_TABLE = """
CREATE TABLE IF NOT EXISTS packed_partitions (
    partition_id INTEGER PRIMARY KEY,
    row_count    INTEGER NOT NULL,
    asset_ids    BLOB    NOT NULL,
    vector_ids   BLOB    NOT NULL,
    vectors      BLOB    NOT NULL
)
"""

#: Packed quantized scan codes, mirroring ``packed_partitions`` (row
#: order inside the blobs is ascending asset id, identical to the
#: float blob, so scan results stay bit-identical to the row layout).
PACKED_CODES_TABLE = """
CREATE TABLE IF NOT EXISTS packed_codes (
    partition_id INTEGER PRIMARY KEY,
    row_count    INTEGER NOT NULL,
    asset_ids    BLOB    NOT NULL,
    codes        BLOB    NOT NULL
)
"""

#: The delta-store stays row-per-vector under the packed layout:
#: upserts must remain one cheap row write, not a rewrite of a packed
#: blob per batch.
PACKED_DELTA_TABLE = """
CREATE TABLE IF NOT EXISTS delta_vectors (
    asset_id  TEXT    PRIMARY KEY,
    vector_id INTEGER NOT NULL,
    vector    BLOB    NOT NULL
) WITHOUT ROWID
"""

#: Point lookups (get_vector, rerank fetches, upsert deletes) need to
#: find an asset's partition and its row index inside the packed blob
#: without scanning blobs; this locator is the packed layout's analog
#: of the row layout's unique asset-id index.
PACKED_LOCATOR_TABLE = """
CREATE TABLE IF NOT EXISTS vector_locator (
    asset_id     TEXT    PRIMARY KEY,
    partition_id INTEGER NOT NULL,
    vector_id    INTEGER NOT NULL,
    row_index    INTEGER NOT NULL
) WITHOUT ROWID
"""

#: Blob-file layout (``storage_backend="blobfile"``): partition
#: payloads live as length-prefixed, CRC-stamped records in an
#: append-only ``<db>.blob.<gen>`` file; SQLite keeps this locator —
#: one row per ``(partition_id, kind)`` mapping the partition to its
#: record's byte range. ``gen`` names the blob-file generation the
#: record lives in (bumped by compaction's atomic swap), so a record
#: reference is valid exactly when its generation's file is. Rewrites
#: append a fresh record and flip the locator row in the same SQLite
#: transaction; a torn append is unreachable garbage by construction.
BLOB_LOCATOR_TABLE = """
CREATE TABLE IF NOT EXISTS blob_locator (
    partition_id INTEGER NOT NULL,
    kind         TEXT    NOT NULL,
    gen          INTEGER NOT NULL,
    offset       INTEGER NOT NULL,
    length       INTEGER NOT NULL,
    row_count    INTEGER NOT NULL,
    PRIMARY KEY (partition_id, kind)
) WITHOUT ROWID
"""

TOKENS_TABLE = """
CREATE TABLE IF NOT EXISTS tokens (
    attribute TEXT NOT NULL,
    token     TEXT NOT NULL,
    asset_id  TEXT NOT NULL,
    PRIMARY KEY (attribute, token, asset_id)
) WITHOUT ROWID
"""

TOKENS_ASSET_INDEX = """
CREATE INDEX IF NOT EXISTS idx_tokens_asset_id
    ON tokens (asset_id)
"""

COLUMN_STATS_TABLE = """
CREATE TABLE IF NOT EXISTS column_stats (
    attribute TEXT PRIMARY KEY,
    payload   TEXT NOT NULL
) WITHOUT ROWID
"""

#: CRC32 of each indexed partition's stored payload, one row per
#: ``(partition_id, kind)`` with kind ``"vectors"`` (the float32
#: payload plus the ids it is keyed by) or ``"codes"`` (the quantized
#: scan codes). Written inside the same transaction as the payload it
#: covers, verified on every cold read; the delta partition is
#: excluded (rewritten by every upsert, and always reranked exactly).
#: A partition with no checksum row predates this table and is read
#: unverified — scrub stamps it on the next pass.
PARTITION_CHECKSUMS_TABLE = """
CREATE TABLE IF NOT EXISTS partition_checksums (
    partition_id INTEGER NOT NULL,
    kind         TEXT    NOT NULL,
    crc32        INTEGER NOT NULL,
    PRIMARY KEY (partition_id, kind)
) WITHOUT ROWID
"""


def attributes_table_ddl(attributes: dict[str, str]) -> str:
    """DDL for the attributes table with the client-declared columns."""
    columns = ["asset_id TEXT PRIMARY KEY"]
    for name, sql_type in attributes.items():
        columns.append(f"{_quote_ident(name)} {sql_type}")
    body = ",\n    ".join(columns)
    return (
        f"CREATE TABLE IF NOT EXISTS attributes (\n    {body}\n)"
        " WITHOUT ROWID"
    )


def attribute_index_ddls(attributes: dict[str, str]) -> list[str]:
    """One b-tree index per declared attribute column (paper §3.5)."""
    return [
        (
            f"CREATE INDEX IF NOT EXISTS idx_attr_{name} "
            f"ON attributes ({_quote_ident(name)})"
        )
        for name in attributes
    ]


def fts_table_ddl(fts_attributes: tuple[str, ...]) -> str:
    """FTS5 mirror over the FTS-enabled attribute columns.

    ``asset_id`` rides along UNINDEXED so MATCH hits can be joined back.
    """
    cols = ", ".join(_quote_ident(name) for name in fts_attributes)
    return (
        "CREATE VIRTUAL TABLE IF NOT EXISTS attributes_fts USING fts5("
        f"asset_id UNINDEXED, {cols})"
    )


def fts5_available(conn: sqlite3.Connection) -> bool:
    """Probe whether this SQLite build was compiled with FTS5."""
    try:
        conn.execute(
            "CREATE VIRTUAL TABLE temp._fts5_probe USING fts5(x)"
        )
        conn.execute("DROP TABLE temp._fts5_probe")
        return True
    except sqlite3.OperationalError:
        return False


def create_common_schema(
    conn: sqlite3.Connection,
    attributes: dict[str, str],
    fts_attributes: tuple[str, ...],
    use_fts5: bool,
) -> None:
    """Create the layout-independent tables (everything but vectors).

    The vector/code tables belong to the selected storage backend
    (``repro.storage.backends``), which creates its own layout tables
    after this.
    """
    conn.execute(META_TABLE)
    conn.execute(CENTROIDS_TABLE)
    conn.execute(TOKENS_TABLE)
    conn.execute(TOKENS_ASSET_INDEX)
    conn.execute(COLUMN_STATS_TABLE)
    conn.execute(PARTITION_CHECKSUMS_TABLE)
    conn.execute(attributes_table_ddl(attributes))
    for ddl in attribute_index_ddls(attributes):
        conn.execute(ddl)
    if use_fts5 and fts_attributes:
        conn.execute(fts_table_ddl(fts_attributes))


def create_schema(
    conn: sqlite3.Connection,
    attributes: dict[str, str],
    fts_attributes: tuple[str, ...],
    use_fts5: bool,
    use_quantization: bool = False,
) -> None:
    """Create all tables and indexes of the default row layout."""
    create_common_schema(conn, attributes, fts_attributes, use_fts5)
    conn.execute(VECTORS_TABLE)
    conn.execute(VECTORS_ASSET_INDEX)
    if use_quantization:
        conn.execute(VECTOR_CODES_TABLE)
        conn.execute(CODES_ASSET_INDEX)


def _quote_ident(name: str) -> str:
    """Quote an identifier for embedding in DDL/DML.

    Attribute names are validated as Python identifiers at config time,
    but quoting anyway means even a future relaxation of that rule
    cannot turn a column name into SQL.
    """
    escaped = name.replace('"', '""')
    return f'"{escaped}"'
