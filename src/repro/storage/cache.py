"""Byte-budgeted LRU cache of decoded IVF partitions.

This is the library's page-cache analog: the unit of disk transfer in
MicroNN is one IVF partition (vectors are clustered on disk by partition
id, paper §3.2), so the cache holds decoded partitions — the asset ids
plus the contiguous float32 matrix the distance kernels consume.

The budget comes from the :class:`~repro.core.config.DeviceProfile`;
evicting whole partitions keeps accounting exact and mirrors how the
clustered layout makes partition reads sequential. Cold-start scenarios
purge the cache (``clear``); warm-cache scenarios pre-populate it by
running warm-up queries. Writers invalidate the partitions they touch so
readers never see stale data.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.storage.memory import MemoryTracker

#: Memory-tracker category used for cached partitions.
CACHE_CATEGORY = "partition_cache"

#: Memory-tracker category used for cached quantized-code partitions.
CODES_CACHE_CATEGORY = "codes_cache"


@dataclass(frozen=True)
class CachedPartition:
    """A decoded partition: row identities plus the vector matrix.

    The matrix is float32 for full-precision partitions and uint8 for
    SQ8 code partitions — the byte accounting below works for both, and
    a code entry is ~4x smaller, which is exactly why the codes cache
    holds 4x more partitions in the same budget.
    """

    partition_id: int
    asset_ids: tuple[str, ...]
    vector_ids: tuple[int, ...]
    matrix: np.ndarray

    @property
    def nbytes(self) -> int:
        # Account the matrix plus a small fixed overhead per row for ids.
        return int(self.matrix.nbytes) + 16 * len(self.asset_ids)

    def __len__(self) -> int:
        return len(self.asset_ids)


class PartitionCache:
    """Thread-safe LRU over :class:`CachedPartition` entries.

    Entries larger than the whole budget are admitted transiently by the
    caller but never cached (otherwise a single mega-partition would
    evict everything and still not fit).
    """

    def __init__(
        self,
        budget_bytes: int,
        tracker: MemoryTracker | None = None,
        category: str = CACHE_CATEGORY,
    ) -> None:
        if budget_bytes < 0:
            raise ValueError("budget_bytes must be >= 0")
        self._budget = budget_bytes
        self._tracker = tracker
        self._category = category
        self._lock = threading.Lock()
        self._entries: OrderedDict[int, CachedPartition] = OrderedDict()
        self._used = 0

    @property
    def budget_bytes(self) -> int:
        return self._budget

    @property
    def used_bytes(self) -> int:
        with self._lock:
            return self._used

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, partition_id: int) -> bool:
        with self._lock:
            return partition_id in self._entries

    def get(self, partition_id: int) -> CachedPartition | None:
        """Return the cached partition and mark it most-recently used."""
        with self._lock:
            entry = self._entries.get(partition_id)
            if entry is not None:
                self._entries.move_to_end(partition_id)
            return entry

    def put(self, entry: CachedPartition) -> bool:
        """Insert a partition, evicting LRU entries to fit the budget.

        Returns ``True`` if the entry was cached, ``False`` if it was
        too large for the budget and was rejected.
        """
        nbytes = entry.nbytes
        if nbytes > self._budget:
            return False
        with self._lock:
            old = self._entries.pop(entry.partition_id, None)
            if old is not None:
                self._used -= old.nbytes
            while self._used + nbytes > self._budget and self._entries:
                _, evicted = self._entries.popitem(last=False)
                self._used -= evicted.nbytes
            self._entries[entry.partition_id] = entry
            self._used += nbytes
            self._sync_tracker()
        return True

    def invalidate(self, partition_id: int) -> None:
        """Drop one partition (called by writers that touched it)."""
        with self._lock:
            entry = self._entries.pop(partition_id, None)
            if entry is not None:
                self._used -= entry.nbytes
                self._sync_tracker()

    def clear(self) -> None:
        """Drop everything (cold-start scenario, or full rebuild)."""
        with self._lock:
            self._entries.clear()
            self._used = 0
            self._sync_tracker()

    def cached_partition_ids(self) -> tuple[int, ...]:
        with self._lock:
            return tuple(self._entries.keys())

    def _sync_tracker(self) -> None:
        # Caller holds self._lock.
        if self._tracker is not None:
            self._tracker.set_category(self._category, self._used)
