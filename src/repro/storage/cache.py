"""Byte-budgeted LRU cache of decoded IVF partitions.

This is the library's page-cache analog: the unit of disk transfer in
MicroNN is one IVF partition (vectors are clustered on disk by partition
id, paper §3.2), so the cache holds decoded partitions — the asset ids
plus the contiguous float32 matrix the distance kernels consume.

The budget comes from the :class:`~repro.core.config.DeviceProfile`;
evicting whole partitions keeps accounting exact and mirrors how the
clustered layout makes partition reads sequential. Cold-start scenarios
purge the cache (``clear``); warm-cache scenarios pre-populate it by
running warm-up queries. Writers invalidate the partitions they touch so
readers never see stale data.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.storage.memory import MemoryTracker

#: Memory-tracker category used for cached partitions.
CACHE_CATEGORY = "partition_cache"

#: Memory-tracker category used for cached quantized-code partitions.
CODES_CACHE_CATEGORY = "codes_cache"

#: Memory-tracker category used for pipeline scratch buffers.
SCRATCH_CATEGORY = "scratch_buffers"

#: Memory-tracker category used for the lazily encoded delta codes.
DELTA_CODES_CATEGORY = "delta_codes"

#: Fixed per-row byte overhead charged for row identities (asset and
#: vector ids) in cache accounting; admission estimates made before
#: decoding must use the same constant or they drift from ``put``.
ROW_ID_OVERHEAD_BYTES = 16


@dataclass(frozen=True)
class CachedPartition:
    """A decoded partition: row identities plus the vector matrix.

    The matrix is float32 for full-precision partitions and uint8 for
    SQ8 code partitions — the byte accounting below works for both, and
    a code entry is ~4x smaller, which is exactly why the codes cache
    holds 4x more partitions in the same budget.

    ``lease`` is set only on entries decoded into a pipeline scratch
    buffer (loads the partition cache would not admit): the matrix is a
    view into pooled memory, the entry must never be cached, and the
    consumer returns the lease to its :class:`ScratchBufferPool` once
    the partition has been scored.

    ``stored_bytes`` is the on-disk size the storage backend reported
    for this partition's read — layout-dependent (the packed layout
    has no per-row b-tree overhead), so consumers that estimate I/O
    (the serving scheduler's cost model) must prefer it over
    reconstructing bytes from ``nbytes``. ``None`` on entries built
    away from a backend read (e.g. in-memory delta codes).
    """

    partition_id: int
    asset_ids: tuple[str, ...]
    vector_ids: tuple[int, ...]
    matrix: np.ndarray
    lease: "ScratchLease | None" = None
    stored_bytes: int | None = None

    @property
    def nbytes(self) -> int:
        # Account the matrix plus a small fixed overhead per row for ids.
        return int(self.matrix.nbytes) + ROW_ID_OVERHEAD_BYTES * len(
            self.asset_ids
        )

    def __len__(self) -> int:
        return len(self.asset_ids)


class PartitionCache:
    """Thread-safe LRU over :class:`CachedPartition` entries.

    Entries larger than the whole budget are admitted transiently by the
    caller but never cached (otherwise a single mega-partition would
    evict everything and still not fit).
    """

    def __init__(
        self,
        budget_bytes: int,
        tracker: MemoryTracker | None = None,
        category: str = CACHE_CATEGORY,
    ) -> None:
        if budget_bytes < 0:
            raise ValueError("budget_bytes must be >= 0")
        self._budget = budget_bytes
        self._tracker = tracker
        self._category = category
        self._lock = threading.Lock()
        self._entries: OrderedDict[int, CachedPartition] = OrderedDict()
        self._used = 0

    @property
    def budget_bytes(self) -> int:
        return self._budget

    @property
    def used_bytes(self) -> int:
        with self._lock:
            return self._used

    def would_admit(self, nbytes: int) -> bool:
        """Whether an entry of ``nbytes`` could be cached at all.

        ``put`` evicts LRU entries to make room, so the only entries it
        rejects are those larger than the whole budget. The pipelined
        scan asks this *before* decoding, to decode never-cacheable
        partitions into a reusable scratch buffer instead of a fresh
        allocation per scan.
        """
        return nbytes <= self._budget

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, partition_id: int) -> bool:
        with self._lock:
            return partition_id in self._entries

    def get(self, partition_id: int) -> CachedPartition | None:
        """Return the cached partition and mark it most-recently used."""
        with self._lock:
            entry = self._entries.get(partition_id)
            if entry is not None:
                self._entries.move_to_end(partition_id)
            return entry

    def put(self, entry: CachedPartition) -> bool:
        """Insert a partition, evicting LRU entries to fit the budget.

        Returns ``True`` if the entry was cached, ``False`` if it was
        too large for the budget and was rejected.
        """
        nbytes = entry.nbytes
        if nbytes > self._budget:
            return False
        with self._lock:
            old = self._entries.pop(entry.partition_id, None)
            if old is not None:
                self._used -= old.nbytes
            while self._used + nbytes > self._budget and self._entries:
                _, evicted = self._entries.popitem(last=False)
                self._used -= evicted.nbytes
            self._entries[entry.partition_id] = entry
            self._used += nbytes
            self._sync_tracker()
        return True

    def invalidate(self, partition_id: int) -> None:
        """Drop one partition (called by writers that touched it)."""
        with self._lock:
            entry = self._entries.pop(partition_id, None)
            if entry is not None:
                self._used -= entry.nbytes
                self._sync_tracker()

    def clear(self) -> None:
        """Drop everything (cold-start scenario, or full rebuild)."""
        with self._lock:
            self._entries.clear()
            self._used = 0
            self._sync_tracker()

    def cached_partition_ids(self) -> tuple[int, ...]:
        with self._lock:
            return tuple(self._entries.keys())

    def _sync_tracker(self) -> None:
        # Caller holds self._lock.
        if self._tracker is not None:
            self._tracker.set_category(self._category, self._used)


class DeltaCodesCache:
    """Single-slot cache of the lazily quantized delta partition.

    The delta partition is deliberately full-precision *on disk* — an
    upsert stays one row write — but it is also scanned by EVERY query,
    so a delta that has grown to thousands of vectors makes each scan
    re-read (and exactly score) the one partition quantization cannot
    shrink. Once the delta crosses ``delta_quantize_threshold``, the
    engine encodes it with the active quantizer on first scan and parks
    the codes here; later scans score the cached codes through the
    same rerank machinery as any coded partition.

    A single slot rather than a seat in the byte-budgeted LRUs because
    the entry's lifetime is write-bound, not capacity-bound: every
    delta write invalidates it (the very next scan must see the new
    vector), and it must survive even a zero cache budget — the
    cache-less device profile is exactly where re-reading the float32
    delta hurts most. Residency is tracked under
    :data:`DELTA_CODES_CATEGORY`; the entry is at most
    ``delta_rows x code_width`` bytes.
    """

    def __init__(self, tracker: MemoryTracker | None = None) -> None:
        self._tracker = tracker
        self._lock = threading.Lock()
        self._entry: CachedPartition | None = None
        self._generation = 0

    def generation(self) -> int:
        """Invalidation counter; read BEFORE loading the delta rows.

        The write-visibility guard: an encoder snapshots this value,
        reads and encodes the delta, and hands the value back to
        :meth:`put`. A delta write that commits in between bumps the
        counter (via :meth:`invalidate`), so the stale entry is
        rejected instead of cached — without this, a scan racing an
        upsert could install pre-upsert codes that every later scan
        would serve, hiding the fresh vector until the next write.
        """
        with self._lock:
            return self._generation

    def get(self) -> CachedPartition | None:
        with self._lock:
            return self._entry

    def put(self, entry: CachedPartition, generation: int) -> bool:
        """Install codes encoded at ``generation``; False if stale."""
        with self._lock:
            if generation != self._generation:
                return False
            self._entry = entry
            self._sync_tracker()
            return True

    def invalidate(self) -> None:
        """Drop the cached codes (any delta write, purge, or retrain)."""
        with self._lock:
            self._generation += 1
            self._entry = None
            self._sync_tracker()

    def __len__(self) -> int:
        with self._lock:
            return 0 if self._entry is None else len(self._entry)

    def _sync_tracker(self) -> None:
        # Caller holds self._lock.
        if self._tracker is not None:
            nbytes = 0 if self._entry is None else self._entry.nbytes
            self._tracker.set_category(DELTA_CODES_CATEGORY, nbytes)


#: Scratch buffers are rounded up to a multiple of this, so buffers are
#: shared across partitions of slightly different sizes instead of the
#: pool fragmenting into one exact-fit buffer per partition size.
_SCRATCH_GRANULE = 64 * 1024


class ScratchLease:
    """One checked-out scratch buffer (pinned until checked back in).

    ``array(shape, dtype)`` views the leased bytes as the matrix the
    decoder fills; the view dies with the lease, so returning the lease
    while a kernel still reads the matrix is a use-after-free bug the
    pipeline's ownership handoff (I/O stage → queue → compute stage)
    exists to prevent.
    """

    __slots__ = ("_buffer", "nbytes", "_pool")

    def __init__(
        self, buffer: np.ndarray, pool: "ScratchBufferPool"
    ) -> None:
        self._buffer = buffer
        self.nbytes = int(buffer.nbytes)
        self._pool = pool

    def array(self, shape: tuple[int, ...], dtype: object) -> np.ndarray:
        """A writable ndarray view of the leased bytes."""
        needed = int(np.prod(shape)) * np.dtype(dtype).itemsize
        if needed > self.nbytes:
            raise ValueError(
                f"lease holds {self.nbytes} bytes, view needs {needed}"
            )
        flat = self._buffer[:needed].view(dtype)
        return flat.reshape(shape)

    def release(self) -> None:
        """Return this lease to its pool (idempotent).

        Also drops the buffer reference, so any stale view used after
        release fails fast instead of silently reading pooled memory
        that may already be checked out to another worker.
        """
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.checkin(self)
            self._buffer = None


class ScratchBufferPool:
    """Reusable decode buffers for the pipelined partition scan.

    Cold scans through a zero/tiny partition-cache budget previously
    allocated a fresh matrix per partition per query; the pipeline
    instead checks a buffer out, decodes into it, scores, and checks it
    back in — the steady state is ``pipeline_depth + compute workers``
    buffers recycled forever.

    Accounting: *pinned* bytes (checked out) plus *pooled* bytes (free,
    awaiting reuse) are both resident and tracked under
    :data:`SCRATCH_CATEGORY` against the device memory budget. When a
    checkout would push residency past the budget the buffer is still
    handed out — queries must proceed — but flagged transient: on
    checkin it is freed, not pooled, so the pool never holds more than
    the budget in steady state.
    """

    def __init__(
        self,
        budget_bytes: int,
        tracker: MemoryTracker | None = None,
        category: str = SCRATCH_CATEGORY,
    ) -> None:
        if budget_bytes < 0:
            raise ValueError("budget_bytes must be >= 0")
        self._budget = budget_bytes
        self._tracker = tracker
        self._category = category
        self._lock = threading.Lock()
        self._free: list[np.ndarray] = []
        self._pinned = 0
        self._pooled = 0
        self._checkouts = 0
        self._reuses = 0

    @property
    def budget_bytes(self) -> int:
        return self._budget

    @property
    def pinned_bytes(self) -> int:
        with self._lock:
            return self._pinned

    @property
    def pooled_bytes(self) -> int:
        with self._lock:
            return self._pooled

    @property
    def checkouts(self) -> int:
        with self._lock:
            return self._checkouts

    @property
    def reuses(self) -> int:
        """Checkouts served by recycling a pooled buffer."""
        with self._lock:
            return self._reuses

    def has_headroom(self) -> bool:
        """Whether pinned residency is still inside the budget.

        ``checkout`` never fails — in-flight queries must proceed, so an
        over-budget checkout is handed out transiently — which makes
        this the back-pressure signal instead: the serving layer's
        admission control defers *new* queries while the pinned bytes
        alone exceed the budget, letting in-flight scans return their
        leases before more decode memory is committed. A zero budget
        disables pooling, not serving, so it always has headroom.
        """
        with self._lock:
            return self._budget == 0 or self._pinned < self._budget

    def checkout(self, nbytes: int) -> ScratchLease:
        """Lease a buffer of at least ``nbytes`` (pinned until checkin)."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        size = max(
            _SCRATCH_GRANULE,
            -(-nbytes // _SCRATCH_GRANULE) * _SCRATCH_GRANULE,
        )
        with self._lock:
            self._checkouts += 1
            # Smallest pooled buffer that fits; the granule rounding
            # keeps partition-size jitter from defeating reuse.
            best = None
            for i, buf in enumerate(self._free):
                if buf.nbytes >= size and (
                    best is None or buf.nbytes < self._free[best].nbytes
                ):
                    best = i
            if best is not None:
                buf = self._free.pop(best)
                self._pooled -= buf.nbytes
                self._pinned += buf.nbytes
                self._reuses += 1
                self._sync_tracker()
                return ScratchLease(buf, self)
            buf = np.empty(size, dtype=np.uint8)
            self._pinned += size
            self._sync_tracker()
        return ScratchLease(buf, self)

    def checkin(self, lease: ScratchLease) -> None:
        """Return a lease; pool the buffer if the budget allows."""
        buf = lease._buffer
        with self._lock:
            self._pinned -= buf.nbytes
            if self._pinned + self._pooled + buf.nbytes <= self._budget:
                self._free.append(buf)
                self._pooled += buf.nbytes
            self._sync_tracker()

    def drain(self) -> None:
        """Free all pooled (unpinned) buffers — cold start / close.

        Leases still checked out stay pinned and accounted; they return
        through ``checkin`` as their scans finish.
        """
        with self._lock:
            self._free.clear()
            self._pooled = 0
            self._sync_tracker()

    def _sync_tracker(self) -> None:
        # Caller holds self._lock.
        if self._tracker is not None:
            self._tracker.set_category(
                self._category, self._pinned + self._pooled
            )
