"""Vector blob codec.

Vectors are stored as little-endian float32 blobs — the exact memory
layout the batched distance kernels expect — so decoding a partition is
a zero-copy ``np.frombuffer`` and no per-vector marshalling happens on
the query path (paper §3.3: "By storing the vector blobs in the database
using the format expected by the matrix multiplication library, we
eliminate expensive data marshalling operations").
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import DimensionMismatchError, StorageError

#: dtype of every stored vector; fixed little-endian for portability.
VECTOR_DTYPE = np.dtype("<f4")

#: dtype of quantized SQ8 codes: one unsigned byte per dimension.
CODE_DTYPE = np.dtype("u1")


def encode_vector(vector: np.ndarray, dim: int) -> bytes:
    """Encode one vector as a float32 little-endian blob.

    Accepts any 1-D array-like coercible to float32. Raises
    :class:`DimensionMismatchError` if the length is wrong and
    :class:`StorageError` for non-finite values, which would silently
    poison distance computations.
    """
    arr = np.asarray(vector, dtype=VECTOR_DTYPE)
    if arr.ndim != 1:
        raise StorageError(f"vector must be 1-D, got shape {arr.shape}")
    if arr.shape[0] != dim:
        raise DimensionMismatchError(expected=dim, actual=arr.shape[0])
    if not np.all(np.isfinite(arr)):
        raise StorageError("vector contains NaN or infinity")
    return arr.tobytes()


def decode_vector(blob: bytes, dim: int) -> np.ndarray:
    """Decode one blob back into a float32 vector (read-only view)."""
    expected = dim * VECTOR_DTYPE.itemsize
    if len(blob) != expected:
        raise StorageError(
            f"vector blob has {len(blob)} bytes, expected {expected}"
        )
    return np.frombuffer(blob, dtype=VECTOR_DTYPE)


def decode_matrix(blobs: list[bytes], dim: int) -> np.ndarray:
    """Decode a list of blobs into a contiguous (n, dim) float32 matrix.

    A single ``frombuffer`` over the concatenated payload keeps this a
    bulk copy rather than n small ones; the result is the matrix handed
    directly to the BLAS-backed distance kernels.
    """
    if not blobs:
        return np.empty((0, dim), dtype=VECTOR_DTYPE)
    expected = dim * VECTOR_DTYPE.itemsize
    for blob in blobs:
        if len(blob) != expected:
            raise StorageError(
                f"vector blob has {len(blob)} bytes, expected {expected}"
            )
    joined = b"".join(blobs)
    matrix = np.frombuffer(joined, dtype=VECTOR_DTYPE)
    return matrix.reshape(len(blobs), dim)


def decode_matrix_into(
    blobs: list[bytes], dim: int, out: np.ndarray
) -> np.ndarray:
    """Decode blobs into a caller-provided (n, dim) float32 matrix.

    The pipelined scan's allocation-free twin of :func:`decode_matrix`:
    rows are copied straight into ``out`` (a scratch-buffer view), so a
    cold scan recycles a handful of buffers instead of allocating one
    matrix per partition per query. Returns ``out``.
    """
    return _decode_into(blobs, dim, out, VECTOR_DTYPE)


def decode_code_matrix_into(
    blobs: list[bytes], dim: int, out: np.ndarray
) -> np.ndarray:
    """Decode SQ8 code blobs into a caller-provided (n, dim) uint8 matrix."""
    return _decode_into(blobs, dim, out, CODE_DTYPE)


def _decode_into(
    blobs: list[bytes], dim: int, out: np.ndarray, dtype: np.dtype
) -> np.ndarray:
    if out.shape != (len(blobs), dim) or out.dtype != dtype:
        raise StorageError(
            f"output buffer must be {dtype} of shape ({len(blobs)}, {dim}),"
            f" got {out.dtype} {out.shape}"
        )
    expected = dim * dtype.itemsize
    for i, blob in enumerate(blobs):
        if len(blob) != expected:
            raise StorageError(
                f"vector blob has {len(blob)} bytes, expected {expected}"
            )
        out[i] = np.frombuffer(blob, dtype=dtype)
    return out


def encode_matrix(matrix: np.ndarray) -> list[bytes]:
    """Encode each row of a (n, dim) matrix as a blob."""
    arr = np.ascontiguousarray(matrix, dtype=VECTOR_DTYPE)
    if arr.ndim != 2:
        raise StorageError(f"matrix must be 2-D, got shape {arr.shape}")
    if not np.all(np.isfinite(arr)):
        raise StorageError("matrix contains NaN or infinity")
    return [row.tobytes() for row in arr]


def encode_code_matrix(codes: np.ndarray) -> list[bytes]:
    """Encode each row of a (n, dim) uint8 code matrix as a blob.

    SQ8 codes are stored exactly as the asymmetric scan kernel consumes
    them — one byte per dimension, row-contiguous — so, like the float
    blobs, decoding a quantized partition is a bulk ``frombuffer``.
    """
    arr = np.ascontiguousarray(codes)
    if arr.ndim != 2:
        raise StorageError(f"code matrix must be 2-D, got shape {arr.shape}")
    if arr.dtype != CODE_DTYPE:
        raise StorageError(f"codes must be uint8, got {arr.dtype}")
    return [row.tobytes() for row in arr]


def decode_code_matrix(blobs: list[bytes], dim: int) -> np.ndarray:
    """Decode code blobs into a contiguous (n, dim) uint8 matrix."""
    if not blobs:
        return np.empty((0, dim), dtype=CODE_DTYPE)
    for blob in blobs:
        if len(blob) != dim:
            raise StorageError(
                f"code blob has {len(blob)} bytes, expected {dim}"
            )
    joined = b"".join(blobs)
    matrix = np.frombuffer(joined, dtype=CODE_DTYPE)
    return matrix.reshape(len(blobs), dim)
