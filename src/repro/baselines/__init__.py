"""Baselines the paper compares against (§4.1.4)."""

from repro.baselines.inmemory import InMemoryIVF

__all__ = ["InMemoryIVF"]
