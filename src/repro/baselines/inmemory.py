"""InMemory baseline: the same IVF algorithms, fully memory-resident.

Paper §4.1.4: *"A completely memory resident variation of the MicroNN
IVF index. This baseline gives a lower-bound on latency for our IVF
implementation, while illustrating the memory requirements to achieve
this latency."*

The point of the baseline is to keep every implementation aspect fixed
— same clustering, same Algorithm 2 search, same heaps and distance
kernels — and vary only residency: all vectors are buffered in one
contiguous matrix (registered with the memory tracker), there is no
disk, no cache, no SQLite. Comparing it with :class:`MicroNN` isolates
the cost of disk residency, which is exactly what Figures 4-6 plot.

It also supports the same delta-store/flush lifecycle so update
experiments can use it as the "ideal" comparison point.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.config import MicroNNConfig
from repro.core.errors import EmptyDatabaseError
from repro.core.types import (
    BuildReport,
    Neighbor,
    PlanKind,
    QueryStats,
    SearchResult,
)
from repro.index.kmeans import (
    MiniBatchKMeans,
    plan_iterations,
    plan_num_clusters,
)
from repro.query.distance import (
    distances_to_one,
    pairwise_distances,
    surface_distance,
)
from repro.query.heap import topk_from_distances
from repro.storage.memory import MemoryTracker

#: Memory-tracker category for the resident vector buffer.
RESIDENT_CATEGORY = "inmemory_vectors"


class InMemoryIVF:
    """Memory-resident IVF index with the MicroNN search algorithm."""

    def __init__(
        self,
        config: MicroNNConfig,
        tracker: MemoryTracker | None = None,
    ) -> None:
        self._config = config
        self.tracker = tracker or MemoryTracker()
        self._ids: list[str] = []
        self._vectors = np.empty((0, config.dim), dtype=np.float32)
        self._centroids = np.empty((0, config.dim), dtype=np.float32)
        #: partition id per stored vector; -1 marks delta (unindexed).
        self._assignments = np.empty(0, dtype=np.int64)
        self._partition_rows: dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Data loading / updates
    # ------------------------------------------------------------------

    def load(self, asset_ids: list[str], vectors: np.ndarray) -> None:
        """Bulk-load the collection into the resident buffer."""
        vectors = np.ascontiguousarray(vectors, dtype=np.float32)
        if vectors.ndim != 2 or vectors.shape[1] != self._config.dim:
            raise EmptyDatabaseError(
                f"vectors must be (n, {self._config.dim})"
            )
        if len(asset_ids) != vectors.shape[0]:
            raise EmptyDatabaseError("ids/vectors length mismatch")
        self._ids = list(asset_ids)
        self._vectors = vectors
        self._assignments = np.full(len(asset_ids), -1, dtype=np.int64)
        self._partition_rows = {}
        self._account_memory()

    def insert(self, asset_id: str, vector: np.ndarray) -> None:
        """Append one vector into the in-memory delta (partition -1)."""
        vec = np.asarray(vector, dtype=np.float32).reshape(1, -1)
        self._ids.append(asset_id)
        self._vectors = np.vstack([self._vectors, vec])
        self._assignments = np.append(self._assignments, -1)
        row = len(self._ids) - 1
        existing = self._partition_rows.get(-1, np.empty(0, np.int64))
        self._partition_rows[-1] = np.append(existing, row)
        self._account_memory()

    def _account_memory(self) -> None:
        resident = (
            int(self._vectors.nbytes)
            + int(self._centroids.nbytes)
            + 16 * len(self._ids)
        )
        self.tracker.set_category(RESIDENT_CATEGORY, resident)

    def __len__(self) -> int:
        return len(self._ids)

    # ------------------------------------------------------------------
    # Index build (same Algorithm 1 trainer, memory-resident batches)
    # ------------------------------------------------------------------

    def build_index(self, full_batch: bool = True) -> BuildReport:
        """Cluster the resident collection.

        ``full_batch=True`` trains on the whole buffered matrix per
        iteration — the "regular k-means" configuration the paper's
        InMemory comparison uses. ``False`` uses the configured
        mini-batch fraction (useful for ablations).
        """
        start = time.perf_counter()
        self.tracker.reset_peak()
        n = len(self._ids)
        if n == 0:
            raise EmptyDatabaseError("load vectors before building")
        k = plan_num_clusters(n, self._config.target_cluster_size)
        if full_batch:
            batch_size = n
        else:
            batch_size = max(1, int(n * self._config.minibatch_fraction))
        iterations = self._config.kmeans_iterations or plan_iterations(
            n, batch_size
        )
        trainer = MiniBatchKMeans(
            n_clusters=k,
            dim=self._config.dim,
            metric=self._config.metric,
            balance_penalty=self._config.balance_penalty,
            seed=self._config.seed,
        )
        rng = np.random.default_rng(self._config.seed)
        trainer.initialize(
            self._vectors[rng.choice(n, size=min(k, n), replace=False)]
        )
        for _ in range(iterations):
            if batch_size >= n:
                batch = self._vectors
            else:
                batch = self._vectors[
                    rng.choice(n, size=batch_size, replace=False)
                ]
            # Training batches live inside the resident buffer already;
            # only the trainer's centroid copy is extra.
            trainer.partial_fit(batch)
        self._centroids = trainer.centroids.copy()
        self._assignments = trainer.assign(self._vectors).astype(np.int64)
        self._rebuild_partition_rows()
        self._account_memory()
        return BuildReport(
            num_vectors=n,
            num_partitions=k,
            iterations=iterations,
            minibatch_size=batch_size,
            row_changes=n + k,
            duration_s=time.perf_counter() - start,
            peak_memory_bytes=self.tracker.peak_bytes,
        )

    def _rebuild_partition_rows(self) -> None:
        self._partition_rows = {
            int(pid): np.flatnonzero(self._assignments == pid)
            for pid in np.unique(self._assignments)
        }

    @property
    def num_partitions(self) -> int:
        return len(self._centroids)

    def partition_sizes(self) -> dict[int, int]:
        return {
            pid: len(rows)
            for pid, rows in self._partition_rows.items()
            if pid >= 0
        }

    # ------------------------------------------------------------------
    # Search (Algorithm 2 over resident partitions)
    # ------------------------------------------------------------------

    def search(
        self, query: np.ndarray, k: int = 10, nprobe: int | None = None
    ) -> SearchResult:
        """ANN over the resident index (plus the in-memory delta)."""
        nprobe = nprobe or self._config.default_nprobe
        start = time.perf_counter()
        query = np.asarray(query, dtype=np.float32).reshape(-1)
        metric = self._config.metric

        if len(self._centroids) == 0:
            row_sets = [np.arange(len(self._ids))]
        else:
            cdist = distances_to_one(query, self._centroids, metric)
            take = min(nprobe, len(self._centroids))
            probe = np.argpartition(cdist, take - 1)[:take]
            row_sets = [
                self._partition_rows.get(int(pid), np.empty(0, np.int64))
                for pid in probe
            ]
            row_sets.append(
                self._partition_rows.get(-1, np.empty(0, np.int64))
            )
        rows = (
            np.concatenate(row_sets) if row_sets else np.empty(0, np.int64)
        )
        if rows.size == 0:
            neighbors: tuple[Neighbor, ...] = ()
            scanned = 0
        else:
            dist = distances_to_one(query, self._vectors[rows], metric)
            ids = [self._ids[i] for i in rows]
            candidates = topk_from_distances(ids, dist, k)
            neighbors = tuple(
                Neighbor(
                    asset_id=c.asset_id,
                    distance=surface_distance(c.distance, metric),
                )
                for c in candidates
            )
            scanned = int(rows.size)
        stats = QueryStats(
            plan=PlanKind.ANN,
            nprobe=nprobe,
            partitions_scanned=min(nprobe, max(len(self._centroids), 1)),
            vectors_scanned=scanned,
            distance_computations=scanned,
            latency_s=time.perf_counter() - start,
        )
        return SearchResult(neighbors=neighbors, stats=stats)

    def search_batch(
        self, queries: np.ndarray, k: int = 10, nprobe: int | None = None
    ) -> list[SearchResult]:
        """Batch search; each query processed independently.

        Deliberately *without* MQO — the baseline shows what batch
        execution costs when partition scans are not shared.
        """
        q = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        return [self.search(row, k=k, nprobe=nprobe) for row in q]

    def search_exact(self, query: np.ndarray, k: int = 10) -> SearchResult:
        """Exact KNN over the resident matrix."""
        start = time.perf_counter()
        query = np.asarray(query, dtype=np.float32).reshape(-1)
        metric = self._config.metric
        if not self._ids:
            return SearchResult(
                neighbors=(),
                stats=QueryStats(plan=PlanKind.EXACT, latency_s=0.0),
            )
        dist = distances_to_one(query, self._vectors, metric)
        candidates = topk_from_distances(self._ids, dist, k)
        neighbors = tuple(
            Neighbor(
                asset_id=c.asset_id,
                distance=surface_distance(c.distance, metric),
            )
            for c in candidates
        )
        stats = QueryStats(
            plan=PlanKind.EXACT,
            vectors_scanned=len(self._ids),
            distance_computations=len(self._ids),
            latency_s=time.perf_counter() - start,
        )
        return SearchResult(neighbors=neighbors, stats=stats)

    # Convenience for recall sweeps over many queries at once.
    def exact_ground_truth(
        self, queries: np.ndarray, k: int
    ) -> list[list[str]]:
        """Exact top-K ids for every query (vectorized)."""
        q = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        dist = pairwise_distances(q, self._vectors, self._config.metric)
        take = min(k, len(self._ids))
        idx = np.argpartition(dist, take - 1, axis=1)[:, :take]
        out: list[list[str]] = []
        for row in range(q.shape[0]):
            order = idx[row][np.argsort(dist[row, idx[row]], kind="stable")]
            out.append([self._ids[i] for i in order])
        return out
